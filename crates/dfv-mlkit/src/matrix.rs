//! A small dense row-major matrix of `f64`, sufficient for the neural
//! network and data-wrangling needs of this crate. Not a general linear
//! algebra library: just the operations the forecaster's forward/backward
//! passes and the dataset pipeline require.

use serde::{Deserialize, Serialize};

/// Dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of shape `rows x cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Empty matrix (zero rows) with capacity reserved for `rows` rows —
    /// for incremental construction via [`Matrix::push_row`] without
    /// intermediate reallocations.
    pub fn with_capacity(rows: usize, cols: usize) -> Self {
        Matrix { rows: 0, cols, data: Vec::with_capacity(rows * cols) }
    }

    /// Reserve capacity for at least `additional` more rows.
    pub fn reserve_rows(&mut self, additional: usize) {
        self.data.reserve(additional * self.cols);
    }

    /// Build from a row-major data vector. Panics on shape mismatch.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Build from row slices. Panics if rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Add to an element.
    #[inline]
    pub fn add_at(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] += v;
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of one column.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// The raw row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Append a row (the column count must match).
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "row width mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Append every row of `other` (the column counts must match). One
    /// memcpy of `other`'s row-major data, so splicing pre-built blocks is
    /// bit-identical to having pushed their rows one at a time.
    pub fn extend_rows(&mut self, other: &Matrix) {
        assert_eq!(other.cols, self.cols, "column count mismatch");
        self.data.extend_from_slice(&other.data);
        self.rows += other.rows;
    }

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (j, &b) in orow.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        }
        out
    }

    /// `v * self` for a row vector `v` (length = rows).
    pub fn vec_mul(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "vector length mismatch");
        let mut out = vec![0.0; self.cols];
        for (k, &a) in v.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            for (j, &b) in self.row(k).iter().enumerate() {
                out[j] += a * b;
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Elementwise in-place scale.
    pub fn scale(&mut self, s: f64) {
        self.data.iter_mut().for_each(|x| *x *= s);
    }

    /// Elementwise in-place add of another matrix (same shape).
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
    }

    /// Fill with zeros, keeping the shape.
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Numerically stable softmax.
pub fn softmax(xs: &[f64]) -> Vec<f64> {
    let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = xs.iter().map(|&x| (x - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        m.set(0, 0, 1.0);
        m.set(1, 2, 5.0);
        m.add_at(1, 2, 1.0);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 6.0]);
        assert_eq!(m.col(2), vec![0.0, 6.0]);
    }

    #[test]
    fn with_capacity_builds_incrementally() {
        let mut m = Matrix::with_capacity(2, 3);
        assert_eq!((m.rows(), m.cols()), (0, 3));
        m.push_row(&[1.0, 2.0, 3.0]);
        m.reserve_rows(1);
        m.push_row(&[4.0, 5.0, 6.0]);
        assert_eq!(m, Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]));
    }

    #[test]
    fn from_rows_and_vec_agree() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn vec_mul_matches_matmul() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let v = vec![5.0, 6.0];
        let out = m.vec_mul(&v);
        assert_eq!(out, vec![5.0 + 18.0, 10.0 + 24.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn scale_add_clear_norm() {
        let mut m = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert_eq!(m.norm(), 5.0);
        let n = m.clone();
        m.add_assign(&n);
        assert_eq!(m.get(0, 1), 8.0);
        m.scale(0.5);
        assert_eq!(m.get(0, 0), 3.0);
        m.clear();
        assert_eq!(m.norm(), 0.0);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let s = softmax(&[1.0, 2.0, 3.0]);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(s[2] > s[1] && s[1] > s[0]);
        // Stable under large inputs.
        let s2 = softmax(&[1000.0, 1001.0]);
        assert!(s2.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }
}
