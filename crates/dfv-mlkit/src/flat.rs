//! Flattened, cache-resident forest inference: the serving-side compile
//! target of a fitted [`Gbr`](crate::gbr::Gbr).
//!
//! Training (PR 3) made fitting 5x faster but prediction stayed a
//! pointer-chase: every tree is a `Vec<Node>` of enum variants, every hop a
//! match on a heap-separate allocation. A [`FlatForest`] compiles the whole
//! forest into four contiguous arrays — feature index, threshold, left-child
//! offset and (for leaves) the leaf value — laid out so that a split's two
//! children are **adjacent** (`right == left + 1`). Traversal is then a
//! branch-light index update per hop,
//!
//! ```text
//! node = child[node] + (!(row[feature[node]] <= threshold[node])) as usize
//! ```
//!
//! over arrays that fit in cache for any realistically sized forest, and
//! [`FlatForest::predict_batch`] walks B rows x T trees in row blocks so the
//! node arrays stay hot across the whole block.
//!
//! The compilation is **exact**: thresholds, leaf values and the `<=` split
//! predicate are carried bit-for-bit, and the per-row accumulation order
//! (tree 0, tree 1, ...) matches [`Gbr::predict_row`], so flat predictions
//! are bit-identical to the pointer-tree path. The pointer walk stays
//! available as the oracle — the same discipline as the `naive` training
//! path — and the equivalence is pinned by a proptest plus seed-trained
//! artifact digests.
//!
//! [`Gbr::predict_row`]: crate::gbr::Gbr::predict_row

use crate::matrix::Matrix;

/// Sentinel feature index marking a leaf node; its `threshold` slot holds
/// the leaf value instead of a split threshold.
pub const FLAT_LEAF: u32 = u32::MAX;

/// Rows per traversal block: small enough that per-row state lives in
/// registers/L1, large enough to amortize the per-tree loop overhead.
const BLOCK: usize = 16;

/// A boosted forest compiled into contiguous structure-of-arrays node
/// storage. Build one with [`Gbr::flatten`](crate::gbr::Gbr::flatten).
#[derive(Debug, Clone, PartialEq)]
pub struct FlatForest {
    init: f64,
    learning_rate: f64,
    num_features: usize,
    /// Root node index of each tree, in boosting order.
    roots: Vec<u32>,
    /// Split feature per node; [`FLAT_LEAF`] for leaves.
    feature: Vec<u32>,
    /// Split threshold per node; the leaf value for leaves.
    threshold: Vec<f64>,
    /// Left-child index per node; the right child is `child + 1`. Zero
    /// (never read) for leaves.
    child: Vec<u32>,
}

impl FlatForest {
    /// Assemble a compiled forest from flattened node arrays. Crate-private:
    /// the arrays' adjacency invariants are established by the flattening
    /// walk in `gbr.rs`/`tree.rs`.
    pub(crate) fn from_parts(
        init: f64,
        learning_rate: f64,
        num_features: usize,
        roots: Vec<u32>,
        feature: Vec<u32>,
        threshold: Vec<f64>,
        child: Vec<u32>,
    ) -> Self {
        debug_assert_eq!(feature.len(), threshold.len());
        debug_assert_eq!(feature.len(), child.len());
        debug_assert!(roots.iter().all(|&r| (r as usize) < feature.len().max(1)));
        FlatForest { init, learning_rate, num_features, roots, feature, threshold, child }
    }

    /// Width of the feature rows the forest predicts on.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Number of trees in the forest.
    pub fn num_trees(&self) -> usize {
        self.roots.len()
    }

    /// Total nodes across all trees (one contiguous arena).
    pub fn num_nodes(&self) -> usize {
        self.feature.len()
    }

    /// Walk one tree for one row; returns the leaf value.
    #[inline]
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must go right, like the pointer walk
    fn walk(&self, root: u32, row: &[f64]) -> f64 {
        let mut node = root as usize;
        let mut f = self.feature[node];
        while f != FLAT_LEAF {
            // `!(v <= t)` (not `v > t`) so NaN features take the right
            // branch exactly like the pointer walk's if/else.
            let go_right = !(row[f as usize] <= self.threshold[node]);
            node = self.child[node] as usize + go_right as usize;
            f = self.feature[node];
        }
        self.threshold[node]
    }

    /// Predict one row. Bit-identical to
    /// [`Gbr::predict_row`](crate::gbr::Gbr::predict_row) on the forest
    /// this was compiled from.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut acc = 0.0;
        for &root in &self.roots {
            acc += self.walk(root, row);
        }
        self.init + self.learning_rate * acc
    }

    /// Predict every row of a matrix with the blocked batched kernel: rows
    /// are processed in blocks of [`BLOCK`], trees in boosting order inside
    /// each block, so the node arrays stay cache-resident across the block
    /// while each row still accumulates tree values in the exact order of
    /// the scalar path. Bit-identical to
    /// [`Gbr::predict`](crate::gbr::Gbr::predict).
    pub fn predict_batch(&self, x: &Matrix) -> Vec<f64> {
        assert_eq!(x.cols(), self.num_features, "row width mismatch");
        let n = x.rows();
        let mut out = vec![0.0f64; n];
        let mut acc = [0.0f64; BLOCK];
        let mut base = 0;
        while base < n {
            let len = BLOCK.min(n - base);
            acc[..len].fill(0.0);
            for &root in &self.roots {
                for (i, a) in acc[..len].iter_mut().enumerate() {
                    *a += self.walk(root, x.row(base + i));
                }
            }
            for (i, &a) in acc[..len].iter().enumerate() {
                out[base + i] = self.init + self.learning_rate * a;
            }
            base += len;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::gbr::{Gbr, GbrParams};
    use crate::matrix::Matrix;
    use crate::tree::TreeParams;

    fn synth(n: usize, d: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut x = Matrix::zeros(0, d);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let row: Vec<f64> = (0..d)
                .map(|j| {
                    let h = (i as u64)
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add(seed ^ j as u64)
                        .wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    ((h >> 40) as f64) / (1u64 << 24) as f64 - 0.5
                })
                .collect();
            y.push(3.0 * row[0] - row[d / 2] * row[d - 1] + 0.25 * row[d - 1]);
            x.push_row(&row);
        }
        (x, y)
    }

    #[test]
    fn flat_matches_pointer_predictions_bit_for_bit() {
        let (x, y) = synth(300, 5, 7);
        for (n_trees, max_depth, subsample) in [(1, 1, 1.0), (20, 3, 0.7), (40, 4, 0.5)] {
            let params = GbrParams {
                n_trees,
                subsample,
                seed: 11,
                tree: TreeParams { max_depth, ..TreeParams::default() },
                ..GbrParams::default()
            };
            let gbr = Gbr::fit(&x, &y, &params);
            let flat = gbr.flatten();
            assert_eq!(flat.num_trees(), gbr.num_trees());
            assert_eq!(flat.num_features(), gbr.num_features());
            let pointer = gbr.predict(&x);
            let flattened = flat.predict_batch(&x);
            for (r, (a, b)) in pointer.iter().zip(&flattened).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "row {r}");
            }
            for r in 0..x.rows() {
                assert_eq!(flat.predict_row(x.row(r)).to_bits(), pointer[r].to_bits());
            }
        }
    }

    #[test]
    fn block_boundaries_do_not_change_results() {
        let (x, y) = synth(64, 3, 3);
        let gbr = Gbr::fit(&x, &y, &GbrParams { n_trees: 10, ..GbrParams::default() });
        let flat = gbr.flatten();
        // Batch sizes straddling the block size: 1, BLOCK-1, BLOCK, BLOCK+1.
        for take in [1usize, 15, 16, 17, 33, 64] {
            let mut sub = Matrix::zeros(0, 3);
            for r in 0..take {
                sub.push_row(x.row(r));
            }
            let batched = flat.predict_batch(&sub);
            for (r, value) in batched.iter().enumerate() {
                assert_eq!(value.to_bits(), gbr.predict_row(x.row(r)).to_bits());
            }
        }
    }

    #[test]
    fn single_leaf_forest_flattens() {
        // A constant target yields trees that are single leaves.
        let x = Matrix::from_rows(&(0..12).map(|i| vec![i as f64]).collect::<Vec<_>>());
        let y = vec![5.0; 12];
        let gbr = Gbr::fit(&x, &y, &GbrParams { n_trees: 3, subsample: 1.0, ..Default::default() });
        let flat = gbr.flatten();
        assert_eq!(flat.num_nodes(), 3);
        assert_eq!(flat.predict_row(&[99.0]).to_bits(), gbr.predict_row(&[99.0]).to_bits());
    }

    #[test]
    fn nan_rows_take_the_same_branch_as_the_pointer_walk() {
        let (x, y) = synth(120, 3, 5);
        let gbr = Gbr::fit(&x, &y, &GbrParams { n_trees: 8, ..GbrParams::default() });
        let flat = gbr.flatten();
        let rows = [[f64::NAN, 0.1, -0.2], [0.3, f64::NAN, 0.0], [f64::NAN, f64::NAN, f64::NAN]];
        let mut m = Matrix::zeros(0, 3);
        for row in &rows {
            m.push_row(row);
        }
        let batched = flat.predict_batch(&m);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(batched[i].to_bits(), gbr.predict_row(row).to_bits());
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let (x, y) = synth(40, 2, 1);
        let gbr = Gbr::fit(&x, &y, &GbrParams { n_trees: 4, ..GbrParams::default() });
        let flat = gbr.flatten();
        assert!(flat.predict_batch(&Matrix::zeros(0, 2)).is_empty());
    }

    mod equivalence {
        use super::*;
        use proptest::prelude::*;

        /// Random dataset with duplicate-heavy columns: raw cells are either
        /// snapped to a small discrete pool or kept continuous, so flattened
        /// trees get equal-value runs and shallow/deep mixes.
        fn build_dataset(raw: &[(f64, usize)], y: &[f64], d: usize) -> (Matrix, Vec<f64>) {
            const POOL: [f64; 4] = [0.0, 1.0, -1.0, 2.5];
            let n = (raw.len() / d).min(y.len());
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|r| {
                    raw[r * d..(r + 1) * d]
                        .iter()
                        .map(|&(v, code)| if code == 0 { v } else { POOL[(code - 1) % POOL.len()] })
                        .collect()
                })
                .collect();
            (Matrix::from_rows(&rows), y[..n].to_vec())
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// For arbitrary trained forests (any seed/depth/tree count/
            /// subsample) and arbitrary batch sizes, the flattened batched
            /// kernel returns exactly the recursive predictor's bits.
            #[test]
            fn flat_batch_matches_recursive_predict_bit_for_bit(
                raw in proptest::collection::vec((-5.0f64..5.0, 0usize..6), 24..480),
                y_all in proptest::collection::vec(-20.0f64..20.0, 12..96),
                d in 1usize..5,
                n_trees in 1usize..24,
                max_depth in 1usize..5,
                min_samples_leaf in 1usize..4,
                subsample in 0.4f64..=1.0,
                seed in 0u64..1000,
                batch_len in 0usize..48,
            ) {
                let (x, y) = build_dataset(&raw, &y_all, d);
                prop_assume!(x.rows() >= 8);
                let params = GbrParams {
                    n_trees,
                    subsample,
                    seed,
                    tree: TreeParams { max_depth, min_samples_leaf, min_gain: 1e-12 },
                    ..GbrParams::default()
                };
                let gbr = Gbr::fit(&x, &y, &params);
                let flat = gbr.flatten();

                let pointer = gbr.predict(&x);
                let flattened = flat.predict_batch(&x);
                for (r, (a, b)) in pointer.iter().zip(&flattened).enumerate() {
                    prop_assert_eq!(a.to_bits(), b.to_bits(), "row {}", r);
                }

                // An arbitrary-size sub-batch (possibly empty, possibly
                // straddling block boundaries) agrees row for row too.
                let take = batch_len.min(x.rows());
                let mut sub = Matrix::zeros(0, x.cols());
                for r in 0..take {
                    sub.push_row(x.row(r));
                }
                let sub_pred = flat.predict_batch(&sub);
                for (r, value) in sub_pred.iter().enumerate() {
                    prop_assert_eq!(value.to_bits(), pointer[r].to_bits(), "sub row {}", r);
                }
            }
        }
    }
}
