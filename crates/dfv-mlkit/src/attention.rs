//! The forecasting model of Section IV-C: scalar dot-product attention over
//! the temporal context, followed by a fully connected network.
//!
//! For a window of `m` step-feature vectors `x(t_c-m+1) ... x(t_c)` (each of
//! width `h`), the model computes keys/values for every step and a query
//! from the current step, attends over the context with scaled dot-product
//! attention, concatenates the attention context with the current step's
//! features, and maps through a one-hidden-layer MLP to the aggregate
//! execution time of the next `k` steps. Training is plain MSE + Adam with
//! manual backpropagation; inputs and targets are standardized internally.

use crate::dataset::{ScalarScaler, Standardizer, WindowDataset};
use crate::matrix::{dot, softmax, Matrix};
use dfv_obs::Obs;

/// Signed `log1p`: compresses the many orders of magnitude hardware
/// counters span while staying defined for any real input.
#[inline]
fn signed_log1p(v: f64) -> f64 {
    v.signum() * v.abs().ln_1p()
}
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttentionParams {
    /// Attention key/value width.
    pub d_attn: usize,
    /// Hidden layer width of the MLP head.
    pub hidden: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Parameter-init and shuffling seed.
    pub seed: u64,
}

impl Default for AttentionParams {
    fn default() -> Self {
        AttentionParams {
            d_attn: 16,
            hidden: 32,
            learning_rate: 1e-3,
            epochs: 60,
            batch: 32,
            seed: 0,
        }
    }
}

/// One trainable tensor with Adam moments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Param {
    w: Matrix,
    grad: Matrix,
    m: Matrix,
    v: Matrix,
}

impl Param {
    fn new(rows: usize, cols: usize, rng: &mut StdRng) -> Self {
        let bound = (6.0 / (rows + cols) as f64).sqrt();
        let mut w = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                w.set(r, c, rng.gen_range(-bound..bound));
            }
        }
        Param {
            grad: Matrix::zeros(rows, cols),
            m: Matrix::zeros(rows, cols),
            v: Matrix::zeros(rows, cols),
            w,
        }
    }

    fn zeros(rows: usize, cols: usize) -> Self {
        Param {
            w: Matrix::zeros(rows, cols),
            grad: Matrix::zeros(rows, cols),
            m: Matrix::zeros(rows, cols),
            v: Matrix::zeros(rows, cols),
        }
    }

    /// One Adam update from the accumulated gradient (clipped to a global
    /// norm so a single outlier batch cannot blow the parameters up), then
    /// clear the gradient.
    fn step(&mut self, lr: f64, t: usize, batch: f64) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        const CLIP: f64 = 1.0; // max per-element RMS of the batch gradient
        let bc1 = 1.0 - B1.powi(t as i32);
        let bc2 = 1.0 - B2.powi(t as i32);
        let n = self.grad.data().len() as f64;
        let norm = self.grad.norm() / batch;
        let rms = norm / n.sqrt();
        let clip_scale = if rms > CLIP { CLIP / rms } else { 1.0 };
        let (w, g, m, v) =
            (self.w.data_mut(), self.grad.data(), self.m.data_mut(), self.v.data_mut());
        for i in 0..w.len() {
            let gi = g[i] / batch * clip_scale;
            m[i] = B1 * m[i] + (1.0 - B1) * gi;
            v[i] = B2 * v[i] + (1.0 - B2) * gi * gi;
            let mh = m[i] / bc1;
            let vh = v[i] / bc2;
            w[i] -= lr * mh / (vh.sqrt() + EPS);
        }
        self.grad.clear();
    }
}

/// The fitted forecaster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttentionForecaster {
    m: usize,
    h: usize,
    d: usize,
    hidden: usize,
    wq: Param,
    wk: Param,
    wv: Param,
    w1: Param,
    b1: Param,
    w2: Param,
    b2: Param,
    x_scaler: Standardizer,
    y_scaler: ScalarScaler,
}

/// Per-sample forward activations kept for the backward pass.
struct Activations {
    q: Vec<f64>,
    keys: Vec<Vec<f64>>,
    vals: Vec<Vec<f64>>,
    alpha: Vec<f64>,
    z: Vec<f64>,
    a1: Vec<f64>,
    h1: Vec<f64>,
    y_hat: f64,
}

impl AttentionForecaster {
    /// Train on a window dataset.
    pub fn fit(data: &WindowDataset, params: &AttentionParams) -> Self {
        AttentionForecaster::fit_observed(data, params, &Obs::disabled())
    }

    /// Like [`AttentionForecaster::fit`], additionally publishing training
    /// internals into `obs`: `mlkit.attention.epochs` (epochs completed),
    /// `mlkit.attention.epoch_mse` (gauge: standardized-space mean squared
    /// error of the most recent epoch's forward passes) and
    /// `mlkit.attention.epoch_mse_1e6` (histogram of per-epoch MSE in
    /// millionths). The loss readout reuses residuals the training loop
    /// already computes and never feeds back into the weights: the fitted
    /// model is bit-for-bit identical to [`AttentionForecaster::fit`].
    pub fn fit_observed(data: &WindowDataset, params: &AttentionParams, obs: &Obs) -> Self {
        assert!(data.n() > 0, "cannot fit on an empty dataset");
        let mut rng = StdRng::seed_from_u64(params.seed);
        // Counters span many orders of magnitude; compress with a signed
        // log before standardizing so unseen test extremes stay in range.
        let mut x = data.x.clone();
        x.data_mut().iter_mut().for_each(|v| *v = signed_log1p(*v));
        let x_scaler = Standardizer::fit(&x);
        let y_scaler = ScalarScaler::fit(&data.y);
        x_scaler.transform(&mut x);
        let y: Vec<f64> = data.y.iter().map(|&v| y_scaler.transform(v)).collect();

        let (m, h, d, hidden) = (data.m, data.h, params.d_attn, params.hidden);
        let mut model = AttentionForecaster {
            m,
            h,
            d,
            hidden,
            wq: Param::new(h, d, &mut rng),
            wk: Param::new(h, d, &mut rng),
            wv: Param::new(h, d, &mut rng),
            w1: Param::new(d + h, hidden, &mut rng),
            b1: Param::zeros(1, hidden),
            w2: Param::new(hidden, 1, &mut rng),
            b2: Param::zeros(1, 1),
            x_scaler,
            y_scaler,
        };

        model.train_loop(&x, &y, params, &mut rng, obs);
        model
    }

    /// Warm-start retraining on a new window: keep the fitted weights but
    /// zero the Adam moments, refit the input/target scalers on `data`, and
    /// run `params.epochs` more epochs (shuffled by `params.seed`). The
    /// rolling-retrain entry point — a fraction of a cold fit's epochs
    /// tracks a drifted workload because the weights start near a solution.
    pub fn refit(&self, data: &WindowDataset, params: &AttentionParams) -> Self {
        self.refit_observed(data, params, &Obs::disabled())
    }

    /// Like [`AttentionForecaster::refit`], publishing the same training
    /// metrics as [`AttentionForecaster::fit_observed`]. The refitted model
    /// is bit-for-bit independent of `obs`.
    pub fn refit_observed(
        &self,
        data: &WindowDataset,
        params: &AttentionParams,
        obs: &Obs,
    ) -> Self {
        assert!(data.n() > 0, "cannot refit on an empty dataset");
        assert_eq!((data.m, data.h), (self.m, self.h), "window geometry mismatch");
        let mut x = data.x.clone();
        x.data_mut().iter_mut().for_each(|v| *v = signed_log1p(*v));
        let x_scaler = Standardizer::fit(&x);
        let y_scaler = ScalarScaler::fit(&data.y);
        x_scaler.transform(&mut x);
        let y: Vec<f64> = data.y.iter().map(|&v| y_scaler.transform(v)).collect();

        let mut model = self.clone();
        model.x_scaler = x_scaler;
        model.y_scaler = y_scaler;
        for p in [
            &mut model.wq,
            &mut model.wk,
            &mut model.wv,
            &mut model.w1,
            &mut model.b1,
            &mut model.w2,
            &mut model.b2,
        ] {
            p.grad.clear();
            p.m.clear();
            p.v.clear();
        }
        let mut rng = StdRng::seed_from_u64(params.seed);
        model.train_loop(&x, &y, params, &mut rng, obs);
        model
    }

    /// The shared epoch loop of [`AttentionForecaster::fit_observed`] and
    /// [`AttentionForecaster::refit_observed`]: minibatch Adam over
    /// pre-scaled inputs, with the per-epoch MSE readout.
    fn train_loop(
        &mut self,
        x: &Matrix,
        y: &[f64],
        params: &AttentionParams,
        rng: &mut StdRng,
        obs: &Obs,
    ) {
        let n = x.rows();
        let mut order: Vec<usize> = (0..n).collect();
        let mut adam_t = 0usize;
        let observing = obs.is_enabled();
        let epochs = obs.counter("mlkit.attention.epochs");
        let epoch_mse = obs.gauge("mlkit.attention.epoch_mse");
        let mse_hist = obs.histogram("mlkit.attention.epoch_mse_1e6");
        for _epoch in 0..params.epochs {
            order.shuffle(rng);
            let mut sq_sum = 0.0;
            for chunk in order.chunks(params.batch) {
                for &i in chunk {
                    let act = self.forward(x.row(i));
                    let dy = act.y_hat - y[i];
                    if observing {
                        sq_sum += dy * dy;
                    }
                    self.backward(x.row(i), &act, dy);
                }
                adam_t += 1;
                let batch = chunk.len() as f64;
                for p in [
                    &mut self.wq,
                    &mut self.wk,
                    &mut self.wv,
                    &mut self.w1,
                    &mut self.b1,
                    &mut self.w2,
                    &mut self.b2,
                ] {
                    p.step(params.learning_rate, adam_t, batch);
                }
            }
            if observing {
                let mse = sq_sum / n as f64;
                epoch_mse.set(mse);
                mse_hist.record_f64(mse * 1e6);
            }
            epochs.inc();
        }
    }

    /// Step feature vector `t` within a flattened window row.
    #[inline]
    fn step<'a>(&self, row: &'a [f64], t: usize) -> &'a [f64] {
        &row[t * self.h..(t + 1) * self.h]
    }

    fn forward(&self, row: &[f64]) -> Activations {
        let x_last = self.step(row, self.m - 1);
        let q = self.wq.w.vec_mul(x_last);
        let scale = 1.0 / (self.d as f64).sqrt();
        let mut keys = Vec::with_capacity(self.m);
        let mut vals = Vec::with_capacity(self.m);
        let mut scores = Vec::with_capacity(self.m);
        for t in 0..self.m {
            let xt = self.step(row, t);
            let k = self.wk.w.vec_mul(xt);
            let v = self.wv.w.vec_mul(xt);
            scores.push(dot(&q, &k) * scale);
            keys.push(k);
            vals.push(v);
        }
        let alpha = softmax(&scores);
        let mut c = vec![0.0; self.d];
        for t in 0..self.m {
            for (ci, &vi) in c.iter_mut().zip(&vals[t]) {
                *ci += alpha[t] * vi;
            }
        }
        let mut z = c;
        z.extend_from_slice(x_last);
        let mut a1 = self.w1.w.vec_mul(&z);
        for (a, b) in a1.iter_mut().zip(self.b1.w.row(0)) {
            *a += b;
        }
        let h1: Vec<f64> = a1.iter().map(|&a| a.max(0.0)).collect();
        let y_hat = dot(&h1, &self.w2.w.col(0)) + self.b2.w.get(0, 0);
        Activations { q, keys, vals, alpha, z, a1, h1, y_hat }
    }

    /// Accumulate gradients for one sample given `dL/dy_hat = dy`.
    fn backward(&mut self, row: &[f64], act: &Activations, dy: f64) {
        let x_last = self.step(row, self.m - 1).to_vec();
        // Head: y = h1 . w2 + b2
        for (j, &hj) in act.h1.iter().enumerate() {
            self.w2.grad.add_at(j, 0, dy * hj);
        }
        self.b2.grad.add_at(0, 0, dy);
        // dh1 = dy * w2; da1 = dh1 * relu'(a1)
        let mut da1 = vec![0.0; self.hidden];
        for j in 0..self.hidden {
            if act.a1[j] > 0.0 {
                da1[j] = dy * self.w2.w.get(j, 0);
            }
        }
        // W1: z (d+h) x hidden
        for (i, &zi) in act.z.iter().enumerate() {
            if zi != 0.0 {
                for (j, &dj) in da1.iter().enumerate() {
                    self.w1.grad.add_at(i, j, zi * dj);
                }
            }
        }
        for (j, &dj) in da1.iter().enumerate() {
            self.b1.grad.add_at(0, j, dj);
        }
        // dz = W1 . da1
        let mut dz = vec![0.0; self.d + self.h];
        for (i, dzi) in dz.iter_mut().enumerate() {
            *dzi = dot(self.w1.w.row(i), &da1);
        }
        let dc = &dz[..self.d];
        // Attention: c = sum alpha_t v_t
        let scale = 1.0 / (self.d as f64).sqrt();
        let mut dalpha = vec![0.0; self.m];
        for t in 0..self.m {
            dalpha[t] = dot(dc, &act.vals[t]);
            // dWv += x_t (outer) (alpha_t * dc)
            let xt = self.step(row, t).to_vec();
            for (i, &xi) in xt.iter().enumerate() {
                if xi != 0.0 {
                    for (j, &dcj) in dc.iter().enumerate() {
                        self.wv.grad.add_at(i, j, xi * act.alpha[t] * dcj);
                    }
                }
            }
        }
        // Softmax backward.
        let sum_ad: f64 = act.alpha.iter().zip(&dalpha).map(|(&a, &g)| a * g).sum();
        let dscore: Vec<f64> =
            act.alpha.iter().zip(&dalpha).map(|(&a, &g)| a * (g - sum_ad)).collect();
        // dq = sum_t dscore_t * k_t * scale ; dk_t = dscore_t * q * scale
        let mut dq = vec![0.0; self.d];
        for t in 0..self.m {
            let xt = self.step(row, t).to_vec();
            for j in 0..self.d {
                dq[j] += dscore[t] * act.keys[t][j] * scale;
            }
            for (i, &xi) in xt.iter().enumerate() {
                if xi != 0.0 {
                    for (j, &qj) in act.q.iter().enumerate() {
                        self.wk.grad.add_at(i, j, xi * dscore[t] * qj * scale);
                    }
                }
            }
        }
        for (i, &xi) in x_last.iter().enumerate() {
            if xi != 0.0 {
                for (j, &dqj) in dq.iter().enumerate() {
                    self.wq.grad.add_at(i, j, xi * dqj);
                }
            }
        }
    }

    /// Temporal context length `m` the model was trained with.
    pub fn context_len(&self) -> usize {
        self.m
    }

    /// Per-step feature width `h` the model was trained with.
    pub fn step_width(&self) -> usize {
        self.h
    }

    /// Flattened input width (`m * h` columns).
    pub fn window_width(&self) -> usize {
        self.m * self.h
    }

    /// Signed-log + standardize one raw window row in place.
    fn scale_row(&self, row: &mut [f64]) {
        for (c, v) in row.iter_mut().enumerate() {
            *v = (signed_log1p(*v) - self.x_scaler.means[c]) / self.x_scaler.stds[c];
        }
    }

    /// Predict the aggregate future time for one raw (unscaled) window row.
    pub fn predict_row(&self, raw_row: &[f64]) -> f64 {
        assert_eq!(raw_row.len(), self.m * self.h, "window width mismatch");
        let mut row = raw_row.to_vec();
        self.scale_row(&mut row);
        let act = self.forward(&row);
        self.y_scaler.inverse(act.y_hat)
    }

    /// Predict every window of a dataset.
    pub fn predict(&self, data: &WindowDataset) -> Vec<f64> {
        (0..data.n()).map(|i| self.predict_row(data.x.row(i))).collect()
    }

    /// Predict a batch of raw window rows in one batched matrix pass.
    ///
    /// Functionally identical to calling [`predict_row`](Self::predict_row)
    /// per row — the accumulation order of every reduction matches the
    /// scalar path, so results are bit-for-bit equal — but the whole batch
    /// moves through each layer as a single [`Matrix`] product, which is
    /// what the serving layer's micro-batching relies on.
    pub fn predict_batch(&self, raw: &Matrix) -> Vec<f64> {
        assert_eq!(raw.cols(), self.m * self.h, "window width mismatch");
        let n = raw.rows();
        if n == 0 {
            return Vec::new();
        }
        let mut x = raw.clone();
        for r in 0..n {
            self.scale_row(x.row_mut(r));
        }
        // Per-step slices as n x h matrices.
        let step_mat = |t: usize| -> Matrix {
            let mut s = Matrix::zeros(n, self.h);
            for r in 0..n {
                s.row_mut(r).copy_from_slice(&x.row(r)[t * self.h..(t + 1) * self.h]);
            }
            s
        };
        let x_last = step_mat(self.m - 1);
        let q = x_last.matmul(&self.wq.w); // n x d
        let scale = 1.0 / (self.d as f64).sqrt();
        let mut scores = Matrix::zeros(n, self.m);
        let mut vals: Vec<Matrix> = Vec::with_capacity(self.m);
        for t in 0..self.m {
            let xt = step_mat(t);
            let k = xt.matmul(&self.wk.w); // n x d
            let v = xt.matmul(&self.wv.w); // n x d
            for r in 0..n {
                scores.set(r, t, dot(q.row(r), k.row(r)) * scale);
            }
            vals.push(v);
        }
        // Attention context per row, then z = [c | x_last].
        let mut z = Matrix::zeros(n, self.d + self.h);
        for r in 0..n {
            let alpha = softmax(scores.row(r));
            let zr = z.row_mut(r);
            for (t, vt) in vals.iter().enumerate() {
                for (ci, &vi) in zr[..self.d].iter_mut().zip(vt.row(r)) {
                    *ci += alpha[t] * vi;
                }
            }
            zr[self.d..].copy_from_slice(x_last.row(r));
        }
        // MLP head: relu(z W1 + b1) W2 + b2, unscaled back to seconds.
        let mut a1 = z.matmul(&self.w1.w); // n x hidden
        for r in 0..n {
            for (a, b) in a1.row_mut(r).iter_mut().zip(self.b1.w.row(0)) {
                *a += b;
            }
        }
        a1.data_mut().iter_mut().for_each(|a| *a = a.max(0.0));
        let w2_col = self.w2.w.col(0);
        let b2 = self.b2.w.get(0, 0);
        (0..n).map(|r| self.y_scaler.inverse(dot(a1.row(r), &w2_col) + b2)).collect()
    }

    /// Permutation feature importance of the `h` per-step features: shuffle
    /// one feature column (in every window position) and measure the
    /// increase in RMSE on `data`. Returns non-negative scores normalized to
    /// sum to 1 (all-zero if the model is degenerate).
    pub fn permutation_importance(&self, data: &WindowDataset, seed: u64) -> Vec<f64> {
        let base_pred = self.predict(data);
        let base = crate::metrics::rmse(&data.y, &base_pred);
        let mut rng = StdRng::seed_from_u64(seed);
        let n = data.n();
        let mut scores = vec![0.0; self.h];
        for f in 0..self.h {
            let mut shuffled = data.x.clone();
            // Shuffle feature f across samples, applying the same permutation
            // to every window step so the temporal structure stays intact.
            let mut perm: Vec<usize> = (0..n).collect();
            perm.shuffle(&mut rng);
            for t in 0..self.m {
                let col = t * self.h + f;
                let vals: Vec<f64> = (0..n).map(|r| data.x.get(r, col)).collect();
                for (r, &p) in perm.iter().enumerate() {
                    shuffled.set(r, col, vals[p]);
                }
            }
            let s =
                WindowDataset { x: shuffled, y: data.y.clone(), m: self.m, h: self.h, k: data.k };
            let pred = self.predict(&s);
            let err = crate::metrics::rmse(&data.y, &pred);
            scores[f] = (err - base).max(0.0);
        }
        let total: f64 = scores.iter().sum();
        if total > 0.0 {
            scores.iter_mut().for_each(|s| *s /= total);
        }
        scores
    }

    /// The attention weights the model assigns to each context step for one
    /// raw window (useful diagnostics: which history steps matter).
    pub fn attention_weights(&self, raw_row: &[f64]) -> Vec<f64> {
        let mut row = raw_row.to_vec();
        self.scale_row(&mut row);
        self.forward(&row).alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mape;

    /// Synthetic forecastable series: y(t) depends on a feature of the
    /// recent past.
    fn synth(num_runs: usize, t_len: usize, m: usize, k: usize, seed: u64) -> WindowDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = WindowDataset::empty(m, 2, k);
        for _ in 0..num_runs {
            let mut level: f64 = rng.gen_range(1.0..3.0);
            let mut steps = Vec::new();
            let mut times = Vec::new();
            for _ in 0..t_len {
                level = 0.9 * level + 0.1 * rng.gen_range(1.0..3.0);
                let noise: f64 = rng.gen_range(-0.05..0.05);
                // Feature 0 = congestion level, feature 1 = pure noise.
                steps.push(vec![level, rng.gen_range(-1.0..1.0)]);
                times.push(10.0 * level + noise);
            }
            data.push_run(&steps, &times);
        }
        data
    }

    fn quick_params() -> AttentionParams {
        AttentionParams { epochs: 40, d_attn: 8, hidden: 16, seed: 3, ..Default::default() }
    }

    #[test]
    fn learns_a_persistent_signal() {
        let train = synth(20, 30, 4, 2, 1);
        let test = synth(5, 30, 4, 2, 99);
        let model = AttentionForecaster::fit(&train, &quick_params());
        let pred = model.predict(&test);
        let err = mape(&test.y, &pred);
        assert!(err < 8.0, "MAPE {err}% too high");
    }

    #[test]
    fn beats_predicting_the_training_mean() {
        let train = synth(20, 30, 4, 2, 1);
        let test = synth(5, 30, 4, 2, 77);
        let model = AttentionForecaster::fit(&train, &quick_params());
        let pred = model.predict(&test);
        let mean = crate::metrics::mean(&train.y);
        let mean_pred = vec![mean; test.n()];
        assert!(mape(&test.y, &pred) < mape(&test.y, &mean_pred));
    }

    #[test]
    fn deterministic_given_seed() {
        let train = synth(5, 20, 3, 1, 1);
        let m1 = AttentionForecaster::fit(&train, &quick_params());
        let m2 = AttentionForecaster::fit(&train, &quick_params());
        assert_eq!(m1.predict_row(train.x.row(0)), m2.predict_row(train.x.row(0)));
    }

    #[test]
    fn batched_predictions_match_scalar_path_bit_for_bit() {
        let train = synth(10, 25, 4, 2, 1);
        let model = AttentionForecaster::fit(&train, &quick_params());
        let test = synth(4, 25, 4, 2, 42);
        let batched = model.predict_batch(&test.x);
        assert_eq!(batched.len(), test.n());
        for (i, &b) in batched.iter().enumerate() {
            let scalar = model.predict_row(test.x.row(i));
            assert_eq!(b, scalar, "row {i}: batch {b} != scalar {scalar}");
        }
        assert_eq!(model.window_width(), 4 * 2);
        assert_eq!(model.context_len(), 4);
        assert_eq!(model.step_width(), 2);
    }

    #[test]
    fn batched_prediction_of_empty_matrix_is_empty() {
        let train = synth(5, 20, 3, 1, 1);
        let model = AttentionForecaster::fit(&train, &quick_params());
        let empty = crate::matrix::Matrix::zeros(0, model.window_width());
        assert!(model.predict_batch(&empty).is_empty());
    }

    #[test]
    fn attention_weights_are_a_distribution() {
        let train = synth(5, 20, 4, 1, 1);
        let model = AttentionForecaster::fit(&train, &quick_params());
        let w = model.attention_weights(train.x.row(0));
        assert_eq!(w.len(), 4);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(w.iter().all(|&a| a >= 0.0));
    }

    #[test]
    fn permutation_importance_finds_the_signal_feature() {
        let train = synth(20, 30, 4, 2, 1);
        let model = AttentionForecaster::fit(&train, &quick_params());
        let imp = model.permutation_importance(&train, 5);
        assert_eq!(imp.len(), 2);
        assert!(imp[0] > imp[1], "importances {imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn refit_is_deterministic_and_preserves_geometry() {
        let train = synth(10, 25, 4, 2, 1);
        let model = AttentionForecaster::fit(&train, &quick_params());
        let window = synth(10, 25, 4, 2, 8);
        let p = AttentionParams { epochs: 5, ..quick_params() };
        let r1 = model.refit(&window, &p);
        let r2 = model.refit(&window, &p);
        assert_eq!(r1.predict_row(window.x.row(0)), r2.predict_row(window.x.row(0)));
        assert_eq!(r1.context_len(), model.context_len());
        assert_eq!(r1.step_width(), model.step_width());
    }

    #[test]
    fn warm_refit_tracks_a_shifted_target() {
        let train = synth(20, 30, 4, 2, 1);
        let model = AttentionForecaster::fit(&train, &quick_params());
        // The workload shifts: the same features now map to 1.8x the time.
        let mut window = synth(10, 30, 4, 2, 8);
        window.y.iter_mut().for_each(|y| *y *= 1.8);
        let mut test = synth(5, 30, 4, 2, 99);
        test.y.iter_mut().for_each(|y| *y *= 1.8);
        let p = AttentionParams { epochs: 10, ..quick_params() };
        let refit = model.refit(&window, &p);
        let stale_err = mape(&test.y, &model.predict(&test));
        let refit_err = mape(&test.y, &refit.predict(&test));
        assert!(
            refit_err < stale_err,
            "warm refit ({refit_err}%) should beat the stale model ({stale_err}%)"
        );
        assert!(refit_err < 10.0, "refit MAPE {refit_err}% too high");
    }

    #[test]
    fn gradients_match_finite_differences() {
        // Spot-check the manual backprop on a tiny model.
        let mut data = WindowDataset::empty(2, 2, 1);
        data.push_run(&[vec![0.5, -0.2], vec![0.1, 0.3], vec![-0.4, 0.8]], &[1.0, 2.0, 3.0]);
        let params =
            AttentionParams { epochs: 1, d_attn: 3, hidden: 4, seed: 7, ..Default::default() };
        let mut model = AttentionForecaster::fit(&data, &params);
        // Use a fresh row; compute analytic gradient of L = 0.5 (y_hat - y)^2
        // w.r.t. one Wq entry and compare with central differences.
        let mut row = data.x.row(0).to_vec();
        for (c, v) in row.iter_mut().enumerate() {
            *v = (signed_log1p(*v) - model.x_scaler.means[c]) / model.x_scaler.stds[c];
        }
        let target = 0.0;
        let act = model.forward(&row);
        let dy = act.y_hat - target;
        // Clear grads, then accumulate analytic gradient.
        for p in [
            &mut model.wq,
            &mut model.wk,
            &mut model.wv,
            &mut model.w1,
            &mut model.b1,
            &mut model.w2,
            &mut model.b2,
        ] {
            p.grad.clear();
        }
        let act = model.forward(&row);
        model.backward(&row, &act, dy);
        let analytic = model.wq.grad.get(0, 1);

        let eps = 1e-6;
        let orig = model.wq.w.get(0, 1);
        model.wq.w.set(0, 1, orig + eps);
        let lp = 0.5 * (model.forward(&row).y_hat - target).powi(2);
        model.wq.w.set(0, 1, orig - eps);
        let lm = 0.5 * (model.forward(&row).y_hat - target).powi(2);
        model.wq.w.set(0, 1, orig);
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 1e-5 * (1.0 + numeric.abs()),
            "analytic {analytic} vs numeric {numeric}"
        );
    }
}
