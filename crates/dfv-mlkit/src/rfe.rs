//! Recursive feature elimination with cross-validation (Section IV-B).
//!
//! Per CV fold: repeatedly fit a GBR on the surviving features, identify the
//! worst feature by importance, set it aside, and continue until one feature
//! remains. Features are ranked by elimination time; the fold's
//! best-performing subset is the elimination stage with the lowest test
//! error. A feature's relevance score aggregates, across folds, how late it
//! was eliminated and whether it made the fold's best subset — "the
//! likelihood of being chosen as a well-performing feature across all the
//! cross-validation splits". Scores are normalized to sum to 1 so they are
//! comparable across datasets (Figure 9).
//!
//! Each fold builds one [`TrainingContext`] over its training rows and runs
//! every elimination stage through it via [`Gbr::fit_in`]: the per-feature
//! pre-sort is paid once per fold instead of once per (stage, tree), and
//! feature subsets are column views — no subset matrix per stage.

use crate::dataset::{kfold, Dataset};
use crate::gbr::{Gbr, GbrParams};
use crate::metrics::{mape, rmse};
use crate::tree::TrainingContext;
use dfv_obs::Obs;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// RFE driver parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RfeParams {
    /// Cross-validation folds (the paper uses 10).
    pub folds: usize,
    /// GBR hyperparameters for every fit.
    pub gbr: GbrParams,
    /// Seed for fold assignment.
    pub seed: u64,
}

impl Default for RfeParams {
    fn default() -> Self {
        RfeParams { folds: 10, gbr: GbrParams::default(), seed: 0 }
    }
}

/// Result of RFE with cross-validation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RfeResult {
    /// Per-feature relevance scores, normalized to sum to 1.
    pub relevance: Vec<f64>,
    /// Feature names, aligned with `relevance`.
    pub feature_names: Vec<String>,
    /// Per-fold elimination order (first entry = first eliminated = worst).
    pub elimination_orders: Vec<Vec<usize>>,
    /// Per-fold MAPE of the full-feature model on the fold's test set,
    /// computed on `y + offset` (absolute values) when offsets are given.
    pub fold_mape: Vec<f64>,
    /// Per-fold RMSE of the full-feature model on the fold's test set.
    pub fold_rmse: Vec<f64>,
}

impl RfeResult {
    /// Mean MAPE across folds.
    pub fn mean_mape(&self) -> f64 {
        crate::metrics::mean(&self.fold_mape)
    }

    /// Features sorted by decreasing relevance.
    pub fn ranked_features(&self) -> Vec<(String, f64)> {
        let mut v: Vec<(String, f64)> =
            self.feature_names.iter().cloned().zip(self.relevance.iter().copied()).collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v
    }
}

/// Run RFE with `params.folds`-fold CV on `data`. When `offsets` is given
/// (one per sample), MAPE is evaluated on `prediction + offset` against
/// `target + offset` — used to score deviation models on absolute times.
pub fn rfe(data: &Dataset, offsets: Option<&[f64]>, params: &RfeParams) -> RfeResult {
    rfe_observed(data, offsets, params, &Obs::disabled())
}

/// Like [`rfe`], additionally publishing elimination progress into `obs`:
/// `mlkit.rfe.folds` (CV folds completed), `mlkit.rfe.stage_fits` (GBR
/// fits across elimination stages), `mlkit.rfe.eliminations` (features set
/// aside) and `mlkit.rfe.best_subset_size` (histogram of each fold's
/// best-performing subset size). Counting never feeds back into the
/// elimination, so the result is bit-for-bit identical to [`rfe`].
pub fn rfe_observed(
    data: &Dataset,
    offsets: Option<&[f64]>,
    params: &RfeParams,
    obs: &Obs,
) -> RfeResult {
    let d = data.d();
    assert!(d >= 1, "need at least one feature");
    if let Some(o) = offsets {
        assert_eq!(o.len(), data.n(), "offset length mismatch");
    }
    let folds = kfold(data.n(), params.folds, params.seed);
    let obs_folds = obs.counter("mlkit.rfe.folds");
    let obs_stage_fits = obs.counter("mlkit.rfe.stage_fits");
    let obs_eliminations = obs.counter("mlkit.rfe.eliminations");
    let obs_best_size = obs.histogram("mlkit.rfe.best_subset_size");

    struct FoldOut {
        order: Vec<usize>,
        best_subset: Vec<usize>,
        mape: f64,
        rmse: f64,
    }

    let fold_outputs: Vec<FoldOut> = folds
        .par_iter()
        .enumerate()
        .map(|(fold_i, (train_idx, test_idx))| {
            let train = data.subset(train_idx);
            let test = data.subset(test_idx);
            let mut gbr_params = params.gbr;
            gbr_params.seed = params.gbr.seed.wrapping_add(fold_i as u64);

            // One pre-sorted training context per fold: the fold's training
            // rows never change across elimination stages, so the per-feature
            // sort orders are computed once and shared by every GBR fit below
            // (the elimination stages select feature subsets as column views
            // — no subset matrix is materialized per stage).
            let mut ctx = TrainingContext::new(&train.x);
            let all_features: Vec<usize> = (0..d).collect();

            // Full-feature model error for reporting.
            let full = Gbr::fit_in(&mut ctx, &train.y, &all_features, &gbr_params);
            let pred = full.predict(&test.x);
            let (abs_truth, abs_pred): (Vec<f64>, Vec<f64>) = match offsets {
                Some(off) => test_idx
                    .iter()
                    .zip(pred.iter().zip(&test.y))
                    .map(|(&i, (&p, &t))| (t + off[i], p + off[i]))
                    .unzip(),
                None => (test.y.clone(), pred.clone()),
            };
            let fold_mape = mape(&abs_truth, &abs_pred);
            let fold_rmse = rmse(&test.y, &pred);

            // Recursive elimination.
            let mut surviving: Vec<usize> = (0..d).collect();
            let mut order: Vec<usize> = Vec::with_capacity(d);
            let mut stage_errors: Vec<(Vec<usize>, f64)> = Vec::new();
            while surviving.len() > 1 {
                let model = Gbr::fit_in(&mut ctx, &train.y, &surviving, &gbr_params);
                obs_stage_fits.inc();
                let err = rmse(&test.y, &model.predict(&test.x));
                stage_errors.push((surviving.clone(), err));
                // Importances are full-width (original column indices);
                // unselected features score exactly zero.
                let imp = model.feature_importances();
                let worst_pos = (0..surviving.len())
                    .min_by(|&a, &b| imp[surviving[a]].total_cmp(&imp[surviving[b]]))
                    .expect("non-empty");
                order.push(surviving.remove(worst_pos));
                obs_eliminations.inc();
            }
            // Final single feature stage.
            {
                let model = Gbr::fit_in(&mut ctx, &train.y, &surviving, &gbr_params);
                obs_stage_fits.inc();
                let err = rmse(&test.y, &model.predict(&test.x));
                stage_errors.push((surviving.clone(), err));
            }
            order.push(surviving[0]);

            let best_subset = stage_errors
                .iter()
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .map(|(subset, _)| subset.clone())
                .unwrap_or_default();
            obs_best_size.record(best_subset.len() as u64);
            obs_folds.inc();
            FoldOut { order, best_subset, mape: fold_mape, rmse: fold_rmse }
        })
        .collect();

    // Aggregate relevance: normalized elimination rank plus a bonus for
    // membership in the fold's best-performing subset.
    let mut raw = vec![0.0; d];
    for out in &fold_outputs {
        for (rank, &feature) in out.order.iter().enumerate() {
            // rank 0 = eliminated first (worst) -> lowest score.
            raw[feature] += rank as f64 / (d.max(2) - 1) as f64;
        }
        for &feature in &out.best_subset {
            raw[feature] += 0.5;
        }
    }
    let total: f64 = raw.iter().sum();
    let relevance = if total > 0.0 {
        raw.iter().map(|&v| v / total).collect()
    } else {
        vec![1.0 / d as f64; d]
    };

    RfeResult {
        relevance,
        feature_names: data.feature_names.clone(),
        elimination_orders: fold_outputs.iter().map(|o| o.order.clone()).collect(),
        fold_mape: fold_outputs.iter().map(|o| o.mape).collect(),
        fold_rmse: fold_outputs.iter().map(|o| o.rmse).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    /// Dataset where feature 0 drives the target, 1 is weakly informative,
    /// and 2-3 are noise.
    fn synth(n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(42);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let f0: f64 = rng.gen_range(-1.0..1.0);
            let f1: f64 = rng.gen_range(-1.0..1.0);
            let f2: f64 = rng.gen_range(-1.0..1.0);
            let f3: f64 = rng.gen_range(-1.0..1.0);
            rows.push(vec![f0, f1, f2, f3]);
            y.push(10.0 * f0 + 1.0 * f1 + 0.05 * rng.gen_range(-1.0..1.0));
        }
        Dataset::new(
            Matrix::from_rows(&rows),
            y,
            vec!["signal".into(), "weak".into(), "noise_a".into(), "noise_b".into()],
        )
    }

    fn fast_params() -> RfeParams {
        RfeParams { folds: 3, gbr: GbrParams { n_trees: 30, ..Default::default() }, seed: 1 }
    }

    #[test]
    fn rfe_ranks_the_signal_feature_first() {
        let data = synth(300);
        let result = rfe(&data, None, &fast_params());
        let ranked = result.ranked_features();
        assert_eq!(ranked[0].0, "signal", "ranked: {ranked:?}");
        // Relevance sums to 1.
        assert!((result.relevance.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Noise features score below the signal.
        assert!(result.relevance[0] > result.relevance[2]);
        assert!(result.relevance[0] > result.relevance[3]);
    }

    #[test]
    fn elimination_orders_are_permutations() {
        let data = synth(150);
        let result = rfe(&data, None, &fast_params());
        for order in &result.elimination_orders {
            let mut o = order.clone();
            o.sort_unstable();
            assert_eq!(o, vec![0, 1, 2, 3]);
        }
        assert_eq!(result.elimination_orders.len(), 3);
    }

    #[test]
    fn offsets_shift_mape_to_absolute_scale() {
        let data = synth(150);
        // Large positive offsets make relative errors tiny.
        let offsets = vec![1.0e4; data.n()];
        let with = rfe(&data, Some(&offsets), &fast_params());
        let without = rfe(&data, None, &fast_params());
        assert!(with.mean_mape() < without.mean_mape());
        assert!(with.mean_mape() < 1.0, "absolute-scale MAPE should be tiny");
    }

    #[test]
    fn deterministic_given_seed() {
        let data = synth(100);
        let a = rfe(&data, None, &fast_params());
        let b = rfe(&data, None, &fast_params());
        assert_eq!(a.relevance, b.relevance);
    }
}
