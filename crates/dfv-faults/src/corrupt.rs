//! Deterministic corruption of serialized artifacts, for negative-path
//! tests of the loading layers (truncated files, schema skew). These
//! helpers produce *reliably bad* inputs — the point is that loaders must
//! answer with typed errors, never panics.

/// Keep only the first `fraction` of `json` (by bytes, snapped to a char
/// boundary). With `fraction < 1.0` the result is not valid JSON for any
/// non-trivial document.
pub fn truncate_json(json: &str, fraction: f64) -> String {
    let keep = ((json.len() as f64 * fraction.clamp(0.0, 1.0)) as usize).min(json.len());
    let mut end = keep;
    while end > 0 && !json.is_char_boundary(end) {
        end -= 1;
    }
    json[..end].to_string()
}

/// Rewrite a `"schema_version": <n>` field to `version`, leaving the rest
/// of the document intact — a well-formed file from an incompatible future
/// (or ancient) layout.
pub fn skew_schema_version(json: &str, version: u32) -> String {
    let Some(key) = json.find("\"schema_version\"") else {
        return json.to_string();
    };
    let after_key = key + "\"schema_version\"".len();
    let Some(colon) = json[after_key..].find(':') else {
        return json.to_string();
    };
    let start = after_key + colon + 1;
    let end = json[start..].find([',', '}']).map(|i| start + i).unwrap_or(json.len());
    format!("{}{}{}", &json[..start], version, &json[end..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(serde::Deserialize)]
    struct Probe {
        schema_version: u32,
        version: u64,
    }

    #[test]
    fn truncation_is_deterministic_and_invalid() {
        let json = r#"{"schema_version":1,"app":"milc-16","version":3}"#;
        let cut = truncate_json(json, 0.5);
        assert_eq!(cut, truncate_json(json, 0.5));
        assert!(cut.len() < json.len());
        assert!(serde_json::from_str::<Probe>(&cut).is_err());
        assert_eq!(truncate_json(json, 1.0), json);
        assert_eq!(truncate_json(json, 0.0), "");
    }

    #[test]
    fn schema_skew_rewrites_only_the_version() {
        let json = r#"{"schema_version":1,"app":"milc-16","version":3}"#;
        let skewed = skew_schema_version(json, 99);
        assert_eq!(skewed, r#"{"schema_version":99,"app":"milc-16","version":3}"#);
        let probe: Probe = serde_json::from_str(&skewed).unwrap();
        assert_eq!(probe.schema_version, 99);
        assert_eq!(probe.version, 3);
        // Documents without the field pass through unchanged.
        assert_eq!(skew_schema_version("{}", 99), "{}");
    }
}
