//! # dfv-faults
//!
//! Seeded, deterministic fault injection for the reproduction pipeline.
//!
//! The paper's data lives on imperfect telemetry: LDMS collection gaps,
//! dropped AriesNCL samples, stale intervals, corrupt model artifacts and
//! saturated serving queues (Bhatele et al., IPDPS 2020; Costello &
//! Bhatele's longitudinal follow-up makes missing monitoring data the
//! central obstacle). This crate describes *which* faults strike *where*
//! without owning any of the machinery they strike:
//!
//! * [`rng`] — stateless SplitMix64 hash draws, so a fault's verdict
//!   depends only on `(seed, site, stream, index)` and never on
//!   evaluation order or thread count;
//! * [`schedule`] — when a site fires: never, Bernoulli, periodic, or a
//!   contiguous burst;
//! * [`plan`] — the [`FaultPlan`]: one schedule per injection site,
//!   threaded by the host layers (`dfv-counters` sessions, the
//!   `dfv-serve` batcher, `dfv-experiments` campaigns);
//! * [`corrupt`] — deterministic artifact corruption (truncation, schema
//!   skew) for negative-path tests.
//!
//! Two invariants make the layer testable:
//!
//! 1. **Off means off**: with [`FaultPlan::none`] every consumer is
//!    bit-for-bit identical to a build without the fault layer.
//! 2. **Same seed, same faults**: any plan replays the identical fault
//!    pattern for the same seed, regardless of scheduling.

pub mod corrupt;
pub mod obs;
pub mod plan;
pub mod rng;
pub mod schedule;

pub use corrupt::{skew_schema_version, truncate_json};
pub use obs::VerdictCounters;
pub use plan::{FaultPlan, FaultSite};
pub use rng::{splitmix64, unit_f64};
pub use schedule::Schedule;
