//! The [`FaultPlan`]: one schedule per injection site.

use crate::rng::splitmix64;
use crate::schedule::Schedule;
use serde::{Deserialize, Serialize};

/// The injection sites the pipeline exposes. Each site salts its draws
/// differently, so e.g. a counter dropout and an LDMS gap at the same step
/// of the same job are independent events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultSite {
    /// AriesNCL per-step counter read lost entirely (job-scoped sampler
    /// missed the interval).
    CounterDropout,
    /// AriesNCL read returns the previous interval again (stale/duplicated
    /// sample).
    CounterStale,
    /// LDMS io-aggregate collection gap.
    LdmsIoGap,
    /// LDMS sys-aggregate collection gap.
    LdmsSysGap,
    /// LDMS io aggregate repeats the previous interval.
    LdmsIoStale,
    /// LDMS sys aggregate repeats the previous interval.
    LdmsSysStale,
    /// The serving batcher stalls for one tick (slow consumer), backing
    /// the bounded queue up into rejections.
    BatcherStall,
    /// A retrained model artifact is corrupted on its way to the registry
    /// (truncated export, bad bytes): installation must fail validation and
    /// leave the previous version serving.
    ArtifactCorrupt,
    /// The exporter re-offers an already-installed version (slow or
    /// duplicated export): the registry's rollback guard must refuse it.
    ArtifactStale,
}

impl FaultSite {
    /// Every injection site, in a fixed order (the `index` order).
    pub const ALL: [FaultSite; 9] = [
        FaultSite::CounterDropout,
        FaultSite::CounterStale,
        FaultSite::LdmsIoGap,
        FaultSite::LdmsSysGap,
        FaultSite::LdmsIoStale,
        FaultSite::LdmsSysStale,
        FaultSite::BatcherStall,
        FaultSite::ArtifactCorrupt,
        FaultSite::ArtifactStale,
    ];

    /// Stable position of this site in [`FaultSite::ALL`].
    pub fn index(self) -> usize {
        match self {
            FaultSite::CounterDropout => 0,
            FaultSite::CounterStale => 1,
            FaultSite::LdmsIoGap => 2,
            FaultSite::LdmsSysGap => 3,
            FaultSite::LdmsIoStale => 4,
            FaultSite::LdmsSysStale => 5,
            FaultSite::BatcherStall => 6,
            FaultSite::ArtifactCorrupt => 7,
            FaultSite::ArtifactStale => 8,
        }
    }

    /// Stable snake_case name for metric labels and reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::CounterDropout => "counter_dropout",
            FaultSite::CounterStale => "counter_stale",
            FaultSite::LdmsIoGap => "ldms_io_gap",
            FaultSite::LdmsSysGap => "ldms_sys_gap",
            FaultSite::LdmsIoStale => "ldms_io_stale",
            FaultSite::LdmsSysStale => "ldms_sys_stale",
            FaultSite::BatcherStall => "batcher_stall",
            FaultSite::ArtifactCorrupt => "artifact_corrupt",
            FaultSite::ArtifactStale => "artifact_stale",
        }
    }

    fn salt(self) -> u64 {
        match self {
            FaultSite::CounterDropout => 0x11,
            FaultSite::CounterStale => 0x22,
            FaultSite::LdmsIoGap => 0x33,
            FaultSite::LdmsSysGap => 0x44,
            FaultSite::LdmsIoStale => 0x55,
            FaultSite::LdmsSysStale => 0x66,
            FaultSite::BatcherStall => 0x77,
            FaultSite::ArtifactCorrupt => 0x88,
            FaultSite::ArtifactStale => 0x99,
        }
    }
}

/// A complete description of which faults strike where, replayable from
/// `seed` alone. The plan is plain data: host layers ask [`FaultPlan::fires`]
/// at each site and otherwise run unchanged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Master fault seed; independent of the campaign seed so the same
    /// telemetry can be degraded many different ways.
    pub seed: u64,
    /// Schedule for [`FaultSite::CounterDropout`].
    pub counter_dropout: Schedule,
    /// Schedule for [`FaultSite::CounterStale`].
    pub counter_stale: Schedule,
    /// Shared schedule for the LDMS gap sites (io and sys draw from it
    /// with independent salts).
    pub ldms_gap: Schedule,
    /// Shared schedule for the LDMS stale sites.
    pub ldms_stale: Schedule,
    /// Schedule for [`FaultSite::BatcherStall`].
    pub batcher_stall: Schedule,
    /// How long one batcher stall lasts, milliseconds.
    pub stall_millis: u64,
    /// Schedule for [`FaultSite::ArtifactCorrupt`] (retrain/promotion path).
    pub artifact_corrupt: Schedule,
    /// Schedule for [`FaultSite::ArtifactStale`] (retrain/promotion path).
    pub artifact_stale: Schedule,
}

impl FaultPlan {
    /// The no-fault plan: every site [`Schedule::Never`]. Hosts given this
    /// plan must behave bit-for-bit like hosts given no plan at all.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            counter_dropout: Schedule::Never,
            counter_stale: Schedule::Never,
            ldms_gap: Schedule::Never,
            ldms_stale: Schedule::Never,
            batcher_stall: Schedule::Never,
            stall_millis: 0,
            artifact_corrupt: Schedule::Never,
            artifact_stale: Schedule::Never,
        }
    }

    /// Uniform telemetry gaps: counters and LDMS aggregates each drop with
    /// probability `fraction` per step (the gap-fraction ablation's knob).
    pub fn gaps(seed: u64, fraction: f64) -> Self {
        FaultPlan {
            seed,
            counter_dropout: Schedule::Bernoulli { p: fraction },
            ldms_gap: Schedule::Bernoulli { p: fraction },
            ..FaultPlan::none()
        }
    }

    /// Whether no site can ever fire.
    pub fn is_none(&self) -> bool {
        self.counter_dropout.is_never()
            && self.counter_stale.is_never()
            && self.ldms_gap.is_never()
            && self.ldms_stale.is_never()
            && self.batcher_stall.is_never()
            && self.artifact_corrupt.is_never()
            && self.artifact_stale.is_never()
    }

    fn schedule(&self, site: FaultSite) -> &Schedule {
        match site {
            FaultSite::CounterDropout => &self.counter_dropout,
            FaultSite::CounterStale => &self.counter_stale,
            FaultSite::LdmsIoGap | FaultSite::LdmsSysGap => &self.ldms_gap,
            FaultSite::LdmsIoStale | FaultSite::LdmsSysStale => &self.ldms_stale,
            FaultSite::BatcherStall => &self.batcher_stall,
            FaultSite::ArtifactCorrupt => &self.artifact_corrupt,
            FaultSite::ArtifactStale => &self.artifact_stale,
        }
    }

    /// Does `site` fire at `index` of `stream`? `stream` separates
    /// independent sequences sharing a site (one per job, per model, ...);
    /// the verdict is a pure function of `(seed, site, stream, index)`.
    pub fn fires(&self, site: FaultSite, stream: u64, index: u64) -> bool {
        let schedule = self.schedule(site);
        if schedule.is_never() {
            return false;
        }
        let bits = splitmix64(splitmix64(splitmix64(self.seed, site.salt()), stream), index);
        schedule.fires(bits, index)
    }

    /// The fault mask of one `(site, stream)` sequence over `len` indices —
    /// the unit the determinism tests pin.
    pub fn mask(&self, site: FaultSite, stream: u64, len: usize) -> Vec<bool> {
        (0..len as u64).map(|i| self.fires(site, stream, i)).collect()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_never_fires_anywhere() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        for site in [
            FaultSite::CounterDropout,
            FaultSite::CounterStale,
            FaultSite::LdmsIoGap,
            FaultSite::LdmsSysGap,
            FaultSite::BatcherStall,
        ] {
            for i in 0..64 {
                assert!(!plan.fires(site, 3, i));
            }
        }
    }

    #[test]
    fn same_seed_same_mask_different_seed_different_mask() {
        let a = FaultPlan::gaps(11, 0.3);
        let b = FaultPlan::gaps(11, 0.3);
        let c = FaultPlan::gaps(12, 0.3);
        let ma = a.mask(FaultSite::CounterDropout, 5, 256);
        assert_eq!(ma, b.mask(FaultSite::CounterDropout, 5, 256));
        assert_ne!(ma, c.mask(FaultSite::CounterDropout, 5, 256));
        assert!(ma.iter().any(|&f| f), "a 30% plan fires somewhere in 256 draws");
    }

    #[test]
    fn sites_and_streams_draw_independently() {
        let plan = FaultPlan {
            seed: 7,
            counter_dropout: Schedule::Bernoulli { p: 0.5 },
            ldms_gap: Schedule::Bernoulli { p: 0.5 },
            ..FaultPlan::none()
        };
        let drop5 = plan.mask(FaultSite::CounterDropout, 5, 256);
        assert_ne!(drop5, plan.mask(FaultSite::LdmsIoGap, 5, 256));
        assert_ne!(drop5, plan.mask(FaultSite::LdmsSysGap, 5, 256));
        assert_ne!(drop5, plan.mask(FaultSite::CounterDropout, 6, 256));
    }

    #[test]
    fn gap_fraction_sets_only_the_gap_sites() {
        let plan = FaultPlan::gaps(1, 0.1);
        assert!(!plan.is_none());
        assert_eq!(plan.counter_stale, Schedule::Never);
        assert_eq!(plan.batcher_stall, Schedule::Never);
        let fired = plan.mask(FaultSite::CounterDropout, 0, 10_000);
        let rate = fired.iter().filter(|&&f| f).count() as f64 / 10_000.0;
        assert!((rate - 0.1).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn plans_roundtrip_through_json() {
        let plan = FaultPlan {
            seed: 9,
            counter_stale: Schedule::Periodic { period: 5, phase: 2 },
            batcher_stall: Schedule::Burst { start: 1, len: 3 },
            stall_millis: 4,
            ..FaultPlan::gaps(9, 0.25)
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}
