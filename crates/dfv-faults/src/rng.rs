//! Stateless SplitMix64 hash draws.
//!
//! Faults must replay identically no matter how the host pipeline is
//! scheduled (rayon chunking, serve-batch grouping, test subsetting), so
//! the layer never carries RNG state: every verdict is a pure hash of
//! `(seed, salt, ...)` chains. The mixer matches the campaign's seed
//! derivation in `dfv-experiments` so the two layers share one notion of
//! stream splitting.

/// SplitMix64 finalizer: mix a seed with a salt into a new 64-bit stream.
pub fn splitmix64(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Map hash bits onto `[0, 1)` with full 53-bit mantissa resolution.
pub fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_salt_sensitive() {
        assert_eq!(splitmix64(7, 3), splitmix64(7, 3));
        assert_ne!(splitmix64(7, 3), splitmix64(7, 4));
        assert_ne!(splitmix64(7, 3), splitmix64(8, 3));
    }

    #[test]
    fn unit_draws_live_in_the_half_open_interval() {
        for i in 0..1000u64 {
            let u = unit_f64(splitmix64(42, i));
            assert!((0.0..1.0).contains(&u), "{u}");
        }
        assert_eq!(unit_f64(0), 0.0);
        assert!(unit_f64(u64::MAX) < 1.0);
    }

    #[test]
    fn unit_draws_are_roughly_uniform() {
        let n = 10_000u64;
        let mean: f64 = (0..n).map(|i| unit_f64(splitmix64(9, i))).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
