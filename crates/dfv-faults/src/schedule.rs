//! When a fault site fires.

use crate::rng::unit_f64;
use serde::{Deserialize, Serialize};

/// A fault schedule over a site's event index (step number, batch tick,
/// ...). Stochastic variants draw from the hash bits the caller derives for
/// `(seed, site, stream, index)`; deterministic variants ignore them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Schedule {
    /// The site never fires (the default everywhere).
    #[default]
    Never,
    /// Each index fires independently with probability `p`, mimicking the
    /// sporadic per-interval sample loss of a busy LDMS collector.
    Bernoulli {
        /// Per-index fault probability in `[0, 1]`.
        p: f64,
    },
    /// Every `period`-th index fires (offset by `phase`), mimicking a
    /// collector that misses a fixed beat.
    Periodic {
        /// Firing period; 0 never fires.
        period: u64,
        /// Offset of the firing index within the period.
        phase: u64,
    },
    /// A contiguous outage: indices in `start .. start + len` fire,
    /// mimicking a collection blackout or a consumer stall window.
    Burst {
        /// First faulty index.
        start: u64,
        /// Number of consecutive faulty indices.
        len: u64,
    },
}

impl Schedule {
    /// Does the site fire at `index`, given the site's hash `bits`?
    pub fn fires(&self, bits: u64, index: u64) -> bool {
        match *self {
            Schedule::Never => false,
            Schedule::Bernoulli { p } => unit_f64(bits) < p,
            Schedule::Periodic { period, phase } => period > 0 && index % period == phase % period,
            Schedule::Burst { start, len } => index >= start && index - start < len,
        }
    }

    /// Whether this schedule can ever fire.
    pub fn is_never(&self) -> bool {
        match *self {
            Schedule::Never => true,
            Schedule::Bernoulli { p } => p <= 0.0,
            Schedule::Periodic { period, .. } => period == 0,
            Schedule::Burst { len, .. } => len == 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::splitmix64;

    #[test]
    fn never_and_degenerate_schedules_do_not_fire() {
        for index in 0..100 {
            let bits = splitmix64(1, index);
            assert!(!Schedule::Never.fires(bits, index));
            assert!(!Schedule::Bernoulli { p: 0.0 }.fires(bits, index));
            assert!(!Schedule::Periodic { period: 0, phase: 0 }.fires(bits, index));
            assert!(!Schedule::Burst { start: 10, len: 0 }.fires(bits, index));
        }
        assert!(Schedule::Never.is_never());
        assert!(Schedule::Bernoulli { p: 0.0 }.is_never());
        assert!(!Schedule::Bernoulli { p: 0.5 }.is_never());
    }

    #[test]
    fn bernoulli_one_always_fires_and_rate_tracks_p() {
        let hits = (0..10_000u64)
            .filter(|&i| Schedule::Bernoulli { p: 0.3 }.fires(splitmix64(5, i), i))
            .count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
        assert!(Schedule::Bernoulli { p: 1.0 }.fires(splitmix64(5, 1), 1));
    }

    #[test]
    fn periodic_and_burst_fire_exactly_where_specified() {
        let p = Schedule::Periodic { period: 4, phase: 1 };
        let fired: Vec<u64> = (0..12).filter(|&i| p.fires(0, i)).collect();
        assert_eq!(fired, vec![1, 5, 9]);
        let b = Schedule::Burst { start: 3, len: 2 };
        let fired: Vec<u64> = (0..12).filter(|&i| b.fires(0, i)).collect();
        assert_eq!(fired, vec![3, 4]);
    }
}
