//! Fault-verdict telemetry: how often each site was consulted and fired.
//!
//! A [`VerdictCounters`] wraps [`FaultPlan::fires`] with two counters per
//! site — `faults.checked{site="..."}` and `faults.fired{site="..."}` —
//! so a live registry shows the realized injection rate next to the
//! plan's configured rate. When the owning [`Obs`] carries a live tracer,
//! every hit is also a `fault.fired` trace event tagged with the site,
//! stream and index, so fault injections land in the same causal order as
//! the pipeline events they perturb. Built from a disabled [`Obs`] the
//! counters are inert and [`VerdictCounters::check`] is exactly
//! `plan.fires(..)`: verdicts are a pure function of the plan and never
//! of the observer.

use crate::plan::{FaultPlan, FaultSite};
use dfv_obs::{Counter, Obs, Tracer};

/// Per-site checked/fired counter pairs over a shared registry.
#[derive(Debug, Clone, Default)]
pub struct VerdictCounters {
    checked: [Counter; FaultSite::ALL.len()],
    fired: [Counter; FaultSite::ALL.len()],
    tracer: Tracer,
}

impl VerdictCounters {
    /// Register the per-site counters on `obs` (inert when disabled).
    pub fn new(obs: &Obs) -> Self {
        let counter = |kind: &str, site: FaultSite| {
            obs.counter(&format!("faults.{kind}{{site=\"{}\"}}", site.label()))
        };
        VerdictCounters {
            checked: FaultSite::ALL.map(|s| counter("checked", s)),
            fired: FaultSite::ALL.map(|s| counter("fired", s)),
            tracer: obs.tracer(),
        }
    }

    /// Inert counters (every check still returns the plan's verdict).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Evaluate `plan.fires(site, stream, index)`, counting the check and
    /// (when it fires) the hit. The returned verdict is the plan's,
    /// untouched.
    #[inline]
    pub fn check(&self, plan: &FaultPlan, site: FaultSite, stream: u64, index: u64) -> bool {
        self.checked[site.index()].inc();
        let fired = plan.fires(site, stream, index);
        if fired {
            self.fired[site.index()].inc();
            self.tracer
                .event("fault.fired")
                .str("site", site.label())
                .u64("stream", stream)
                .u64("index", index)
                .emit();
        }
        fired
    }

    /// How many times `site` was consulted.
    pub fn checked(&self, site: FaultSite) -> u64 {
        self.checked[site.index()].get()
    }

    /// How many times `site` fired.
    pub fn fired(&self, site: FaultSite) -> u64 {
        self.fired[site.index()].get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;

    #[test]
    fn check_matches_plan_verdicts_and_counts() {
        let plan =
            FaultPlan { counter_dropout: Schedule::Bernoulli { p: 0.3 }, ..FaultPlan::none() };
        let obs = Obs::enabled_logical();
        let v = VerdictCounters::new(&obs);
        let n = 10_000u64;
        let mut fired = 0u64;
        for i in 0..n {
            let verdict = v.check(&plan, FaultSite::CounterDropout, 9, i);
            assert_eq!(verdict, plan.fires(FaultSite::CounterDropout, 9, i));
            fired += verdict as u64;
        }
        assert_eq!(v.checked(FaultSite::CounterDropout), n);
        assert_eq!(v.fired(FaultSite::CounterDropout), fired);
        let rate = fired as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.03, "rate {rate}");
        let snap = obs.snapshot();
        assert_eq!(snap.counter("faults.checked{site=\"counter_dropout\"}"), Some(n));
        assert_eq!(snap.counter("faults.fired{site=\"counter_dropout\"}"), Some(fired));
    }

    #[test]
    fn fired_checks_emit_trace_events() {
        let plan = FaultPlan {
            counter_dropout: Schedule::Burst { start: 2, len: 1 },
            ..FaultPlan::none()
        };
        let obs = Obs::enabled_logical_traced(64);
        let v = VerdictCounters::new(&obs);
        for i in 0..4 {
            v.check(&plan, FaultSite::CounterDropout, 7, i);
        }
        let events = obs.tracer().events();
        let fired: Vec<_> = events.iter().filter(|e| e.kind == "fault.fired").collect();
        assert_eq!(fired.len(), 1, "exactly the burst index fires");
        assert_eq!(fired[0].u64_attr("index"), Some(2));
        assert_eq!(fired[0].str_attr("site"), Some("counter_dropout"));
    }

    #[test]
    fn disabled_counters_still_return_plan_verdicts() {
        let plan = FaultPlan::gaps(3, 0.5);
        let v = VerdictCounters::disabled();
        for i in 0..256 {
            assert_eq!(
                v.check(&plan, FaultSite::LdmsIoGap, 1, i),
                plan.fires(FaultSite::LdmsIoGap, 1, i)
            );
        }
        assert_eq!(v.checked(FaultSite::LdmsIoGap), 0);
    }
}
