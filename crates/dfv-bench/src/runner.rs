//! Per-figure execution: each function takes the shared campaign context
//! and produces the text + JSON reproduction of one table or figure.

use crate::render;
use dfv_counters::features::FeatureSet;
use dfv_experiments::campaign::{run_campaign, simulate_long_run, CampaignConfig, CampaignResult};
use dfv_experiments::data::AppDataset;
use dfv_experiments::deviation::analyze_deviation;
use dfv_experiments::figures;
use dfv_experiments::forecast::{
    ablation_grid, evaluate, feature_importances, forecast_long_run, ForecastOutcome, ForecastSpec,
};
use dfv_experiments::neighborhood::{analyze, NeighborhoodParams};
use dfv_mlkit::attention::AttentionParams;
use dfv_mlkit::gbr::GbrParams;
use dfv_mlkit::rfe::RfeParams;
use dfv_workloads::app::AppKind;
use serde_json::{json, Value};

/// Output of reproducing one table or figure.
#[derive(Debug, Clone)]
pub struct FigOutput {
    /// Identifier, e.g. `fig9`.
    pub name: &'static str,
    /// Human-readable rendering.
    pub text: String,
    /// Machine-readable data.
    pub json: Value,
}

/// Shared state for a reproduction session: the campaign and the analysis
/// hyperparameters (scaled down in quick mode).
pub struct ReproContext {
    /// The campaign configuration used.
    pub config: CampaignConfig,
    /// The campaign data.
    pub result: CampaignResult,
    /// Whether quick (test-scale) parameters are in use.
    pub quick: bool,
}

impl ReproContext {
    /// Run the campaign and build the context. `quick` selects the small
    /// test-scale machine instead of the Cori-scale one.
    pub fn new(quick: bool) -> Self {
        let config = if quick { CampaignConfig::quick() } else { CampaignConfig::paper() };
        let result = run_campaign(&config);
        ReproContext { config, result, quick }
    }

    /// Build from an existing campaign (used by tests).
    pub fn from_result(config: CampaignConfig, result: CampaignResult, quick: bool) -> Self {
        ReproContext { config, result, quick }
    }

    fn rfe_params(&self) -> RfeParams {
        if self.quick {
            RfeParams { folds: 3, gbr: GbrParams { n_trees: 25, ..Default::default() }, seed: 11 }
        } else {
            RfeParams { folds: 10, gbr: GbrParams { n_trees: 50, ..Default::default() }, seed: 11 }
        }
    }

    fn attention_params(&self) -> AttentionParams {
        if self.quick {
            AttentionParams { epochs: 25, d_attn: 8, hidden: 16, ..Default::default() }
        } else {
            AttentionParams::default()
        }
    }

    fn forecast_folds(&self) -> usize {
        if self.quick {
            3
        } else {
            5
        }
    }

    fn neighborhood_params(&self) -> NeighborhoodParams {
        if self.quick {
            NeighborhoodParams { min_job_nodes: 8, tau: 1.0, top_k: 5, min_cooccurrence: 3 }
        } else {
            NeighborhoodParams::default()
        }
    }

    fn dataset(&self, kind: AppKind, smallest: bool) -> Option<&AppDataset> {
        let mut matches: Vec<&AppDataset> =
            self.result.datasets.iter().filter(|d| d.spec.kind == kind).collect();
        matches.sort_by_key(|d| d.spec.num_nodes);
        if smallest {
            matches.first().copied()
        } else {
            matches.last().copied()
        }
    }
}

/// Table I: applications, versions and inputs.
pub fn table1(ctx: &ReproContext) -> FigOutput {
    let rows = figures::table1(&ctx.result);
    let text = render::table(
        &["Application", "Version", "Nodes", "Input Parameters"],
        &rows
            .iter()
            .map(|(a, v, n, p)| vec![a.clone(), v.clone(), n.to_string(), p.clone()])
            .collect::<Vec<_>>(),
    );
    FigOutput { name: "table1", text, json: json!(rows) }
}

/// Table II: the counters.
pub fn table2(_ctx: &ReproContext) -> FigOutput {
    let rows = figures::table2();
    let text = render::table(
        &["Counter name", "Abbreviation", "Description"],
        &rows.iter().map(|(f, a, d)| vec![f.clone(), a.clone(), d.clone()]).collect::<Vec<_>>(),
    );
    FigOutput { name: "table2", text, json: json!(rows) }
}

/// Table III: high-MI users per dataset plus the recurring set.
pub fn table3(ctx: &ReproContext) -> FigOutput {
    let analysis = analyze(&ctx.result, &ctx.neighborhood_params());
    let mut rows = Vec::new();
    for d in &analysis.per_dataset {
        rows.push(vec![
            d.spec.kind.name().to_string(),
            d.spec.num_nodes.to_string(),
            d.top_users.iter().map(|u| u.0.to_string()).collect::<Vec<_>>().join(", "),
        ]);
    }
    let mut text = render::table(&["Application", "Nodes", "Highly correlated users"], &rows);
    text.push_str("\nUsers in more than one list: ");
    text.push_str(
        &analysis
            .recurring
            .iter()
            .map(|(u, c)| format!("User-{} ({} lists)", u.0, c))
            .collect::<Vec<_>>()
            .join(", "),
    );
    text.push('\n');
    let probe = ctx.result.probe_user;
    if analysis.per_dataset.iter().any(|d| d.top_users.contains(&probe)) {
        text.push_str(&format!(
            "Note: User-{} is the probe user itself (self-interference, as the paper found for User 8).\n",
            probe.0
        ));
    }
    FigOutput { name: "table3", text, json: serde_json::to_value(&analysis).unwrap() }
}

/// Figure 1: relative performance over the campaign.
pub fn fig1(ctx: &ReproContext) -> FigOutput {
    let mut text = String::new();
    let mut data = Vec::new();
    for ds in &ctx.result.datasets {
        let f = figures::fig1(ds, ctx.config.day_seconds);
        text.push_str(&format!(
            "{:<14} runs={:<4} max relative slowdown = {:.2}x\n",
            ds.spec.label(),
            f.points.len(),
            f.max_relative
        ));
        data.push(f);
    }
    text.push_str("\n(points: day vs total-time/best; see JSON for the full series)\n");
    FigOutput { name: "fig1", text, json: serde_json::to_value(&data).unwrap() }
}

/// Figure 3: mean time-per-step trends.
pub fn fig3(ctx: &ReproContext) -> FigOutput {
    let mut text = String::new();
    let mut data = Vec::new();
    for ds in &ctx.result.datasets {
        let f = figures::fig3(ds);
        text.push_str(&format!("{} mean time per step (s):\n", ds.spec.label()));
        text.push_str(&render::series_line(&f.mean_time_per_step, 3, 20));
        data.push(f);
    }
    FigOutput { name: "fig3", text, json: serde_json::to_value(&data).unwrap() }
}

fn fig45_impl(ctx: &ReproContext, kinds: &[(AppKind, bool)], name: &'static str) -> FigOutput {
    let mut text = String::new();
    let mut data = Vec::new();
    for &(kind, smallest) in kinds {
        let Some(ds) = ctx.dataset(kind, smallest) else { continue };
        let b = figures::fig45(ds);
        text.push_str(&format!(
            "{} — mean MPI fraction {:.1}%\n",
            ds.spec.label(),
            100.0 * b.mean_mpi_fraction
        ));
        let mut rows = vec![
            vec![
                "Compute".to_string(),
                format!("{:.2}", b.compute.0),
                format!("{:.2}", b.compute.1),
                format!("{:.2}", b.compute.2),
            ],
            vec![
                "MPI (total)".to_string(),
                format!("{:.2}", b.mpi.0),
                format!("{:.2}", b.mpi.1),
                format!("{:.2}", b.mpi.2),
            ],
        ];
        for (routine, best, avg, worst) in &b.routines {
            rows.push(vec![
                format!("  {routine}"),
                format!("{best:.2}"),
                format!("{avg:.2}"),
                format!("{worst:.2}"),
            ]);
        }
        text.push_str(&render::table(&["Time (s)", "Best", "Average", "Worst"], &rows));
        text.push('\n');
        data.push(b);
    }
    FigOutput { name, text, json: serde_json::to_value(&data).unwrap() }
}

/// Figure 4: AMG and MILC compute/MPI split and routine breakdown (largest
/// node counts, as the paper plots 512 nodes).
pub fn fig4(ctx: &ReproContext) -> FigOutput {
    fig45_impl(ctx, &[(AppKind::Amg, false), (AppKind::Milc, false)], "fig4")
}

/// Figure 5: miniVite and UMT breakdowns (128 nodes).
pub fn fig5(ctx: &ReproContext) -> FigOutput {
    fig45_impl(ctx, &[(AppKind::MiniVite, true), (AppKind::Umt, true)], "fig5")
}

/// Figure 7: counter mean trends mirror the time trend (AMG, smallest node
/// count — the paper uses AMG 128).
pub fn fig7(ctx: &ReproContext) -> FigOutput {
    let ds = ctx.dataset(AppKind::Amg, true).expect("AMG dataset present");
    let f = figures::fig7(ds);
    let c_flit = dfv_experiments::figures::Fig7Series::correlation(&f.mean_time, &f.mean_rt_flit);
    let c_stl = dfv_experiments::figures::Fig7Series::correlation(&f.mean_time, &f.mean_rt_stl);
    let mut text = format!("{}:\nmean time per step (s):\n", ds.spec.label());
    text.push_str(&render::series_line(&f.mean_time, 3, 20));
    text.push_str("mean RT_FLIT_TOT per step:\n");
    text.push_str(&render::series_line(&f.mean_rt_flit, 0, 10));
    text.push_str("mean RT_RB_STL per step:\n");
    text.push_str(&render::series_line(&f.mean_rt_stl, 0, 10));
    text.push_str(&format!(
        "correlation(time, RT_FLIT_TOT) = {c_flit:.3}; correlation(time, RT_RB_STL) = {c_stl:.3}\n"
    ));
    FigOutput { name: "fig7", text, json: serde_json::to_value(&f).unwrap() }
}

fn forecast_table(outcomes: &[ForecastOutcome]) -> String {
    render::table(
        &["m", "k", "features", "MAPE (%)"],
        &outcomes
            .iter()
            .map(|o| {
                vec![
                    o.forecast.m.to_string(),
                    o.forecast.k.to_string(),
                    o.forecast.features.label().to_string(),
                    format!("{:.2}", o.mape),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

fn forecast_mk(_ctx: &ReproContext, kind: AppKind) -> (Vec<usize>, Vec<usize>) {
    // Paper: m in {3, 8}, k in {5, 10} for AMG (20 steps); m in {10, 30},
    // k in {20, 40} for MILC (80 steps). Scale k to 25% / 50% of the run.
    match kind {
        AppKind::Amg => (vec![3, 8], vec![5, 10]),
        AppKind::Milc => (vec![10, 30], vec![20, 40]),
        _ => (vec![2, 3], vec![1, 2]),
    }
}

fn fig_forecast(
    ctx: &ReproContext,
    kind: AppKind,
    feature_sets: &[FeatureSet],
    name: &'static str,
) -> FigOutput {
    let (ms, ks) = forecast_mk(ctx, kind);
    let grid = ablation_grid(&ms, &ks, feature_sets);
    let mut text = String::new();
    let mut data = Vec::new();
    for ds in ctx.result.datasets.iter().filter(|d| d.spec.kind == kind) {
        let outcomes: Vec<ForecastOutcome> = grid
            .iter()
            .map(|f| evaluate(ds, f, &ctx.attention_params(), ctx.forecast_folds(), 33))
            .collect();
        text.push_str(&format!("{}:\n", ds.spec.label()));
        text.push_str(&forecast_table(&outcomes));
        text.push('\n');
        data.push((ds.spec, outcomes));
    }
    FigOutput { name, text, json: serde_json::to_value(&data).unwrap() }
}

/// Figure 8: AMG forecasting MAPE for m/k and app vs app+placement.
pub fn fig8(ctx: &ReproContext) -> FigOutput {
    fig_forecast(ctx, AppKind::Amg, &[FeatureSet::App, FeatureSet::AppPlacement], "fig8")
}

/// Figure 10: MILC forecasting MAPE for m/k and all four feature groups.
pub fn fig10(ctx: &ReproContext) -> FigOutput {
    fig_forecast(ctx, AppKind::Milc, &FeatureSet::ALL, "fig10")
}

/// Figure 9: RFE relevance scores of every counter, per dataset.
pub fn fig9(ctx: &ReproContext) -> FigOutput {
    let mut text = String::new();
    let mut data = Vec::new();
    for ds in &ctx.result.datasets {
        let analysis = analyze_deviation(ds, &ctx.rfe_params());
        text.push_str(&format!(
            "{} (deviation-model MAPE {:.2}%):\n",
            ds.spec.label(),
            analysis.rfe.mean_mape()
        ));
        text.push_str(&render::bar_series(
            &analysis.rfe.feature_names,
            &analysis.rfe.relevance,
            40,
        ));
        text.push('\n');
        data.push(analysis);
    }
    FigOutput { name: "fig9", text, json: serde_json::to_value(&data).unwrap() }
}

/// Figure 11: forecasting-model feature importances for AMG (app+placement)
/// and MILC (all features).
pub fn fig11(ctx: &ReproContext) -> FigOutput {
    let mut text = String::new();
    let mut data = Vec::new();
    for (kind, features) in
        [(AppKind::Amg, FeatureSet::AppPlacement), (AppKind::Milc, FeatureSet::AppPlacementIoSys)]
    {
        let (ms, ks) = forecast_mk(ctx, kind);
        let fspec = ForecastSpec { m: *ms.last().unwrap(), k: *ks.last().unwrap(), features };
        for ds in ctx.result.datasets.iter().filter(|d| d.spec.kind == kind) {
            let imp = feature_importances(ds, &fspec, &ctx.attention_params(), 55);
            text.push_str(&format!("{} (m={}, k={}):\n", ds.spec.label(), fspec.m, fspec.k));
            let (labels, values): (Vec<String>, Vec<f64>) = imp.iter().cloned().unzip();
            text.push_str(&render::bar_series(&labels, &values, 40));
            text.push('\n');
            data.push((ds.spec, imp));
        }
    }
    FigOutput { name: "fig11", text, json: serde_json::to_value(&data).unwrap() }
}

/// Figure 12: forecasting 40-step segments of a long unseen MILC run.
pub fn fig12(ctx: &ReproContext) -> FigOutput {
    let ds = ctx.dataset(AppKind::Milc, true).expect("MILC dataset present");
    let (steps, m, segment) = if ctx.quick { (200, 10, 20) } else { (620, 30, 40) };
    let long = simulate_long_run(&ctx.config, &ds.spec, steps, 4242);
    let segments = forecast_long_run(
        ds,
        &long,
        m,
        segment,
        FeatureSet::AppPlacementIoSys,
        &ctx.attention_params(),
        77,
    );
    let mut rows = Vec::new();
    for (i, (obs, pred)) in segments.iter().enumerate() {
        rows.push(vec![
            format!("{}", m + i * segment),
            format!("{obs:.2}"),
            format!("{pred:.2}"),
            format!("{:+.1}%", 100.0 * (pred - obs) / obs),
        ]);
    }
    let obs: Vec<f64> = segments.iter().map(|s| s.0).collect();
    let pred: Vec<f64> = segments.iter().map(|s| s.1).collect();
    let mape = dfv_mlkit::metrics::mape(&obs, &pred);
    let mut text = format!(
        "MILC long run: {steps} steps, predicting {segment}-step segments from the previous {m} steps\n"
    );
    text.push_str(&render::table(
        &["segment start", "observed (s)", "predicted (s)", "error"],
        &rows,
    ));
    text.push_str(&format!("segment MAPE: {mape:.2}%\n"));
    FigOutput { name: "fig12", text, json: json!({ "segments": segments, "mape": mape }) }
}

/// Everything, in paper order, with progress on stderr (the full-scale
/// ML figures take minutes each).
pub fn all(ctx: &ReproContext) -> Vec<FigOutput> {
    type Stage = fn(&ReproContext) -> FigOutput;
    let stages: Vec<(&str, Stage)> = vec![
        ("fig1", fig1),
        ("table1", table1),
        ("fig3", fig3),
        ("fig4", fig4),
        ("fig5", fig5),
        ("table2", table2),
        ("table3", table3),
        ("fig7", fig7),
        ("fig9", fig9),
        ("fig8", fig8),
        ("fig10", fig10),
        ("fig11", fig11),
        ("fig12", fig12),
    ];
    stages
        .into_iter()
        .map(|(name, f)| {
            let t0 = std::time::Instant::now();
            let out = f(ctx);
            eprintln!("[{name}] done in {:.1}s", t0.elapsed().as_secs_f64());
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ReproContext {
        ReproContext::new(true)
    }

    #[test]
    fn every_descriptive_output_renders() {
        let ctx = ctx();
        for out in
            [table1(&ctx), table2(&ctx), fig1(&ctx), fig3(&ctx), fig4(&ctx), fig5(&ctx), fig7(&ctx)]
        {
            assert!(!out.text.is_empty(), "{} produced no text", out.name);
            assert!(!out.json.is_null(), "{} produced no json", out.name);
        }
    }

    #[test]
    fn table3_runs_on_quick_campaign() {
        let out = table3(&ctx());
        assert!(out.text.contains("Highly correlated users"));
    }
}
