//! `repro` — regenerate every table and figure of the paper.
//!
//! ```sh
//! repro all                 # full Cori-scale campaign, all figures
//! repro fig9 fig10          # selected figures
//! repro all --quick         # small test-scale machine
//! repro all --out results/  # also write text + JSON per figure
//! ```

use dfv_bench::runner::{self, FigOutput, ReproContext};
use std::io::Write;
use std::path::PathBuf;

const KNOWN: &[&str] = &[
    "fig1", "table1", "fig3", "fig4", "fig5", "table2", "table3", "fig7", "fig8", "fig9", "fig10",
    "fig11", "fig12",
];

fn usage() -> ! {
    eprintln!("usage: repro [all | {}]... [--quick] [--out DIR]", KNOWN.join(" | "));
    std::process::exit(2);
}

fn main() {
    let mut quick = false;
    let mut out_dir: Option<PathBuf> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                let Some(dir) = args.next() else { usage() };
                out_dir = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        usage();
    }
    for t in &targets {
        if t != "all" && !KNOWN.contains(&t.as_str()) {
            eprintln!("unknown target: {t}");
            usage();
        }
    }

    eprintln!("running campaign ({} mode) ...", if quick { "quick" } else { "paper/Cori-scale" });
    let t0 = std::time::Instant::now();
    let ctx = ReproContext::new(quick);
    eprintln!("campaign finished in {:.1}s; generating outputs\n", t0.elapsed().as_secs_f64());

    let mut outputs: Vec<FigOutput> = Vec::new();
    if targets.iter().any(|t| t == "all") {
        outputs = runner::all(&ctx);
    } else {
        for t in &targets {
            let t1 = std::time::Instant::now();
            let out = match t.as_str() {
                "fig1" => runner::fig1(&ctx),
                "table1" => runner::table1(&ctx),
                "fig3" => runner::fig3(&ctx),
                "fig4" => runner::fig4(&ctx),
                "fig5" => runner::fig5(&ctx),
                "table2" => runner::table2(&ctx),
                "table3" => runner::table3(&ctx),
                "fig7" => runner::fig7(&ctx),
                "fig8" => runner::fig8(&ctx),
                "fig9" => runner::fig9(&ctx),
                "fig10" => runner::fig10(&ctx),
                "fig11" => runner::fig11(&ctx),
                "fig12" => runner::fig12(&ctx),
                _ => unreachable!("validated above"),
            };
            eprintln!("[{}] done in {:.1}s", t, t1.elapsed().as_secs_f64());
            outputs.push(out);
        }
    }

    for out in &outputs {
        println!("==================== {} ====================", out.name);
        println!("{}", out.text);
    }

    if let Some(dir) = out_dir {
        std::fs::create_dir_all(&dir).expect("create output dir");
        for out in &outputs {
            let mut f = std::fs::File::create(dir.join(format!("{}.txt", out.name)))
                .expect("create text file");
            f.write_all(out.text.as_bytes()).expect("write text");
            let jf = std::fs::File::create(dir.join(format!("{}.json", out.name)))
                .expect("create json file");
            serde_json::to_writer_pretty(jf, &out.json).expect("write json");
        }
        eprintln!("wrote {} outputs to disk", outputs.len());
    }
}
