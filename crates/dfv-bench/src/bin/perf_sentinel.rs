//! CI perf sentinel: smoke-scale reruns of the three benchmark pillars —
//! campaign, mlkit, serve — gated against the committed `BENCH_*.json`
//! baselines.
//!
//! The full benches take minutes and need a quiet machine; CI machines are
//! neither fast nor quiet. So the sentinel runs each pillar at smoke scale
//! and applies a *generous* tolerance (`TOLERANCE`, default 5x) — it will
//! never flag a 20% regression, but it catches the accidental
//! O(n) → O(n²), the debug-assert left in a hot loop, the quadratic
//! re-route that the equivalence tests cannot see because they only check
//! answers, not time. Correctness gates stay exact: the quick-campaign
//! digest and probe count must match the committed baseline bit for bit.
//!
//! Baselines are read from `BENCH_campaign.json`, `BENCH_mlkit.json` and
//! `BENCH_serve.json` at the repo root (located relative to this crate's
//! manifest, so the bin works from any cwd). If a baseline file is missing
//! or unparsable the relative gates are skipped with a note — the exact
//! digest gates still run — so the sentinel degrades gracefully instead of
//! failing CI on an environment problem.
//!
//! Usage: `cargo run --release -p dfv-bench --bin perf_sentinel`
//! Exit status: 0 when every gate passes, 1 on any breach.

use dfv_experiments::campaign::{campaign_digest, run_campaign, CampaignConfig};
use dfv_faults::{splitmix64, unit_f64};
use dfv_mlkit::gbr::{Gbr, GbrParams};
use dfv_mlkit::matrix::Matrix;
use dfv_serve::loadgen::{run_load, LoadMode, LoadSpec};
use dfv_serve::{Fleet, FleetConfig, ModelArtifact, ModelRegistry, ServeConfig};
use std::sync::Arc;
use std::time::Instant;

/// Slowdown multiple that trips the sentinel. Generous by design: CI boxes
/// are shared and slow, and the sentinel hunts order-of-magnitude
/// regressions, not noise.
const TOLERANCE: f64 = 5.0;

/// The committed quick-campaign pin (also asserted by the equivalence and
/// trace suites) — the one gate that is exact, not relative.
const QUICK_DIGEST: u64 = 0xe8dc_cbf5_8040_6247;

const WIDTH: usize = 13;
const APPS: [&str; 4] = ["amg-16", "milc-16", "nekbone-16", "miniamr-16"];

/// One gate's outcome, accumulated into the process exit status.
struct Gates {
    failures: u64,
    skipped: u64,
}

impl Gates {
    fn new() -> Self {
        Gates { failures: 0, skipped: 0 }
    }

    /// A relative perf gate: `measured` must stay within `TOLERANCE` of
    /// `baseline` in the bad direction (`higher_is_better` flips it).
    fn perf(&mut self, label: &str, measured: f64, baseline: Option<f64>, higher_is_better: bool) {
        let Some(baseline) = baseline else {
            self.skipped += 1;
            println!("SKIP {label}: measured {measured:.3}, no baseline (offline or missing)");
            return;
        };
        let (ok, limit) = if higher_is_better {
            (measured >= baseline / TOLERANCE, baseline / TOLERANCE)
        } else {
            (measured <= baseline * TOLERANCE, baseline * TOLERANCE)
        };
        let verdict = if ok { "ok" } else { "FAIL" };
        println!(
            "{verdict} {label}: measured {measured:.3} vs baseline {baseline:.3} \
             (limit {limit:.3}, tolerance {TOLERANCE}x)"
        );
        if !ok {
            self.failures += 1;
        }
    }

    /// An exact gate: no tolerance, no baseline file needed.
    fn exact(&mut self, label: &str, ok: bool, detail: &str) {
        let verdict = if ok { "ok" } else { "FAIL" };
        println!("{verdict} {label}: {detail}");
        if !ok {
            self.failures += 1;
        }
    }
}

/// Load a `BENCH_*.json` at the repo root and pull one numeric leaf by
/// path. Uses only the `Value` surface the offline stub also exposes
/// (`get`/`as_f64`), returning `None` — never panicking — when the file is
/// absent or the parser is the typecheck-only stub.
fn baseline(file: &str, path: &[&str]) -> Option<f64> {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let text = std::fs::read_to_string(format!("{root}/{file}")).ok()?;
    let parsed: serde_json::Value = serde_json::from_str(&text).ok()?;
    let mut node = &parsed;
    for key in path {
        node = node.get(key)?;
    }
    node.as_f64()
}

/// Pillar 1 — campaign: the quick 6-day end-to-end simulation, wall-clock
/// vs `end_to_end_seconds.quick_6_days.fast`, digest and probe count exact.
fn campaign_pillar(gates: &mut Gates) {
    let config = CampaignConfig::quick();
    let t0 = Instant::now();
    let result = run_campaign(&config);
    let elapsed = t0.elapsed().as_secs_f64();
    gates.perf(
        "campaign quick_6_days seconds",
        elapsed,
        baseline("BENCH_campaign.json", &["end_to_end_seconds", "quick_6_days", "fast"]),
        false,
    );
    let digest = campaign_digest(&result);
    gates.exact(
        "campaign quick_6_days digest",
        digest == QUICK_DIGEST,
        &format!("{digest:#018x} (pin {QUICK_DIGEST:#018x})"),
    );
    let probes = result.probe_jobs.len() as f64;
    match baseline("BENCH_campaign.json", &["end_to_end_seconds", "quick_6_days", "probe_jobs"]) {
        Some(expected) => gates.exact(
            "campaign quick_6_days probe_jobs",
            probes == expected,
            &format!("{probes} (baseline {expected})"),
        ),
        None => {
            gates.skipped += 1;
            println!("SKIP campaign probe_jobs: no baseline (offline or missing)");
        }
    }
}

/// Pillar 2 — mlkit: one `Gbr::fit` at the 2000x13 point of the committed
/// training curve, vs `gbr_fit_ms.presorted.2000`.
fn mlkit_pillar(gates: &mut Gates) {
    // The same deviation-style synthetic dataset shape as benches/mlkit.rs:
    // 2000 x 13 in [-1, 1), target 5*(c3 + c10) plus small noise. Built
    // from splitmix64 rather than rand so the bin has no RNG dependency.
    let n = 2000;
    let mut x = Matrix::zeros(n, WIDTH);
    let mut y = Vec::with_capacity(n);
    for r in 0..n {
        let mut target = 0.0;
        for c in 0..WIDTH {
            let v = unit_f64(splitmix64(1, (r * WIDTH + c) as u64)) * 2.0 - 1.0;
            x.set(r, c, v);
            if c == 3 || c == 10 {
                target += 5.0 * v;
            }
        }
        y.push(target + 0.1 * (unit_f64(splitmix64(2, r as u64)) * 2.0 - 1.0));
    }
    // Warm once (page-in, allocator), then time the fit the bench times.
    Gbr::fit(&x, &y, &GbrParams::default());
    let t0 = Instant::now();
    let model = Gbr::fit(&x, &y, &GbrParams::default());
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
    gates.perf(
        "mlkit gbr_fit_ms 2000x13",
        elapsed_ms,
        baseline("BENCH_mlkit.json", &["gbr_fit_ms", "presorted", "2000"]),
        false,
    );
    // The flattened serving kernel must agree with the pointer tree it was
    // compiled from — the serve pillar's bit-exactness, checked cheaply.
    let flat = model.flatten();
    let mut probe = Matrix::zeros(0, WIDTH);
    for r in 0..64.min(n) {
        probe.push_row(x.row(r));
    }
    let same = model.predict(&probe).iter().zip(flat.predict_batch(&probe)).all(|(a, b)| *a == b);
    gates.exact("mlkit flat kernel bit-exact", same, "64-row probe identical");
}

fn serve_artifact(app: &str, seed: u64) -> ModelArtifact {
    let n = 800;
    let mut x = Matrix::zeros(n, WIDTH);
    let mut y = Vec::with_capacity(n);
    for r in 0..n {
        let mut target = 0.0;
        for c in 0..WIDTH {
            let v = unit_f64(splitmix64(seed, (r * WIDTH + c) as u64)) * 2.0 - 1.0;
            x.set(r, c, v);
            if c == 2 || c == 7 {
                target += 3.0 * v;
            }
        }
        y.push(target);
    }
    let params = GbrParams { n_trees: 30, subsample: 1.0, ..GbrParams::default() };
    let gbr = Gbr::fit(&x, &y, &params);
    let names = (0..WIDTH).map(|i| format!("f{i}")).collect();
    ModelArtifact::deviation(app, 1, dfv_counters::FeatureSet::App, names, gbr)
}

/// Pillar 3 — serve: a 50k-request closed loop through the serve_bench
/// fleet shape (2 shards, 4 apps, Zipf 1.05), rps vs
/// `closed_loop_1m_requests.shards_2.rps`.
fn serve_pillar(gates: &mut Gates) {
    let registry = Arc::new(ModelRegistry::new());
    for (i, app) in APPS.iter().enumerate() {
        registry.install(serve_artifact(app, 100 + i as u64)).unwrap();
    }
    let fleet = Fleet::start(
        registry,
        FleetConfig {
            shards: 2,
            shard_config: ServeConfig {
                queue_capacity: 1024,
                max_batch: 64,
                cache_capacity: 8192,
                ..ServeConfig::default()
            },
            spill: true,
        },
    );
    let requests = 50_000u64;
    let spec = LoadSpec {
        seed: 2026,
        requests,
        apps: APPS.iter().map(|s| s.to_string()).collect(),
        pool_per_app: 1024,
        width: WIDTH,
        zipf_s: 1.05,
        mode: LoadMode::Closed { concurrency: 32 },
    };
    let report = run_load(&fleet.handle(), &spec);
    fleet.shutdown();
    gates.exact(
        "serve closed loop completes",
        report.completed == requests && report.errors == 0,
        &format!("{}/{requests} completed, {} errors", report.completed, report.errors),
    );
    gates.perf(
        "serve shards_2 rps",
        report.throughput_rps,
        baseline("BENCH_serve.json", &["closed_loop_1m_requests", "shards_2", "rps"]),
        true,
    );
}

fn main() {
    println!("# perf_sentinel tolerance={TOLERANCE}x");
    let mut gates = Gates::new();
    campaign_pillar(&mut gates);
    mlkit_pillar(&mut gates);
    serve_pillar(&mut gates);
    println!(
        "# perf_sentinel done: {} failure(s), {} skipped baseline(s)",
        gates.failures, gates.skipped
    );
    if gates.failures > 0 {
        std::process::exit(1);
    }
}
