//! End-to-end campaign throughput measurement: the numbers behind
//! `BENCH_campaign.json`.
//!
//! Runs the incremental fast path (`run_campaign`) and the sequential
//! pre-optimization oracle (`run_campaign_naive`) on the quick
//! (small-machine) and paper-scale (34-group Cori) configurations,
//! reporting min-of-N wall-clock seconds and the campaign digest of each
//! result — a speedup claim is always paired with a bit-exactness witness.
//!
//! Usage: `campaign_bench [quick-reps] [paper-reps] [week-reps] [naive 0|1]`
//! (defaults 3, 1, 0, 1). The week config is [`CampaignConfig::cori_week`],
//! the >1200-probe cluster-scale stress load where the pre-optimization
//! engine's per-chunk re-routing dominates.

use dfv_experiments::campaign::{
    campaign_digest, run_campaign, run_campaign_naive, CampaignConfig, CampaignResult,
};
use std::time::Instant;

fn paper_scale_config() -> CampaignConfig {
    // The paper's 34-group Cori machine and Table I apps, cut to two days so
    // a measurement finishes in minutes rather than simulated months. All
    // hot-path costs (routing, per-step congestion solve, telemetry fill)
    // scale with the topology, which is what this config exercises.
    let mut config = CampaignConfig::paper();
    config.num_days = 2;
    config
}

fn measure(
    label: &str,
    config: &CampaignConfig,
    reps: usize,
    f: fn(&CampaignConfig) -> CampaignResult,
) {
    let mut best = f64::INFINITY;
    let mut digest = 0u64;
    let mut runs = 0usize;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let result = f(config);
        let dt = t0.elapsed().as_secs_f64();
        best = best.min(dt);
        digest = campaign_digest(&result);
        runs = result.probe_jobs.len();
        eprintln!("  {label}: {dt:.3}s");
    }
    println!("{label}: best {best:.3}s  probe_jobs {runs}  digest {digest:#018x}");
}

fn naive(config: &CampaignConfig) -> CampaignResult {
    run_campaign_naive(config, None)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let quick_reps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    let paper_reps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);
    let week_reps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(0);
    let with_naive: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);

    measure("quick_6_days_fast", &CampaignConfig::quick(), quick_reps, run_campaign);
    if with_naive > 0 {
        measure("quick_6_days_naive", &CampaignConfig::quick(), quick_reps, naive);
    }
    if paper_reps > 0 {
        let paper = paper_scale_config();
        measure("paper_scale_2_days_fast", &paper, paper_reps, run_campaign);
        if with_naive > 0 {
            measure("paper_scale_2_days_naive", &paper, paper_reps, naive);
        }
    }
    if week_reps > 0 {
        let week = CampaignConfig::cori_week();
        measure("cori_week_fast", &week, week_reps, run_campaign);
        if with_naive > 0 {
            measure("cori_week_naive", &week, week_reps, naive);
        }
    }
}
