//! # dfv-bench
//!
//! The reproduction harness: the `repro` binary regenerates every table and
//! figure of the paper from a simulated campaign, and the Criterion benches
//! measure the performance of each pipeline stage. This library holds the
//! shared figure-rendering code so the binary stays thin.

pub mod render;
pub mod runner;
