//! Plain-text rendering helpers for the `repro` harness: aligned tables,
//! numeric series and horizontal bars, so every figure of the paper has a
//! terminal-readable analogue.

/// Render an aligned table with a header row.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_string()
    };
    let headers: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&headers, &widths));
    out.push('\n');
    out.push_str(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Render a numeric series as `index: value` lines with a proportional bar.
pub fn bar_series(labels: &[String], values: &[f64], width: usize) -> String {
    assert_eq!(labels.len(), values.len(), "labels/values mismatch");
    let max = values.iter().cloned().fold(f64::MIN, f64::max).max(1e-300);
    let label_w = labels.iter().map(|l| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, &v) in labels.iter().zip(values) {
        let n = ((v / max) * width as f64).round().max(0.0) as usize;
        out.push_str(&format!("{label:<label_w$}  {v:>10.4}  {}\n", "#".repeat(n)));
    }
    out
}

/// Compact rendering of a numeric vector: `v0 v1 v2 ...` with fixed
/// precision, wrapped to `per_line` entries.
pub fn series_line(values: &[f64], precision: usize, per_line: usize) -> String {
    let mut out = String::new();
    for (i, v) in values.iter().enumerate() {
        if i > 0 && i % per_line == 0 {
            out.push('\n');
        } else if i > 0 {
            out.push(' ');
        }
        out.push_str(&format!("{v:.precision$}"));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let s = table(
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["longer".into(), "2".into()]],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        // Columns aligned: "value" column starts at the same offset.
        let off0 = lines[0].find("value").unwrap();
        let off2 = lines[2].find('1').unwrap();
        assert_eq!(off0, off2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn bars_scale_to_max() {
        let s = bar_series(&["a".into(), "b".into()], &[1.0, 2.0], 10);
        let lines: Vec<&str> = s.lines().collect();
        let count = |l: &str| l.matches('#').count();
        assert_eq!(count(lines[1]), 10);
        assert_eq!(count(lines[0]), 5);
    }

    #[test]
    fn series_wraps() {
        let s = series_line(&[1.0, 2.0, 3.0, 4.0, 5.0], 1, 2);
        assert_eq!(s.lines().count(), 3);
        assert!(s.starts_with("1.0 2.0\n"));
    }
}
