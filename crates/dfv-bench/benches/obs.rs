//! Benchmarks of the observability hot path: counter bumps, histogram
//! records and span enter/exit, against both a live and a disabled
//! registry. The contract these pin: recording on a live registry is a
//! handful of relaxed atomics (target well under 50 ns/op), and the
//! disabled path is a branch on a `None` — cheap enough to leave
//! instrumentation compiled into every hot loop.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dfv_obs::Obs;

fn bench_counters(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs/counter");
    let live = Obs::enabled_logical();
    let counter = live.counter("bench.counter");
    g.bench_function("inc_live", |b| b.iter(|| black_box(&counter).inc()));
    let disabled = Obs::disabled().counter("bench.counter");
    g.bench_function("inc_disabled", |b| b.iter(|| black_box(&disabled).inc()));
    g.finish();
}

fn bench_histograms(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs/histogram");
    let live = Obs::enabled_logical();
    let hist = live.histogram("bench.hist");
    let mut v = 0u64;
    g.bench_function("record_live", |b| {
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            black_box(&hist).record(v >> 32)
        })
    });
    let disabled = Obs::disabled().histogram("bench.hist");
    g.bench_function("record_disabled", |b| b.iter(|| black_box(&disabled).record(black_box(42))));
    g.bench_function("record_f64_live", |b| {
        b.iter(|| black_box(&hist).record_f64(black_box(1.5e6)))
    });
    g.finish();
}

fn bench_spans(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs/span");
    // Logical clock: measures the span machinery itself, not clock_gettime.
    let live = Obs::enabled_logical();
    g.bench_function("enter_exit_live", |b| {
        b.iter(|| {
            let span = black_box(&live).span("bench.phase");
            black_box(&span);
        })
    });
    let disabled = Obs::disabled();
    g.bench_function("enter_exit_disabled", |b| {
        b.iter(|| {
            let span = black_box(&disabled).span("bench.phase");
            black_box(&span);
        })
    });
    let wall = Obs::enabled();
    g.bench_function("enter_exit_wall_clock", |b| {
        b.iter(|| {
            let span = black_box(&wall).span("bench.phase");
            black_box(&span);
        })
    });
    g.finish();
}

fn bench_trace(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs/trace");
    // The disabled tracer is the zero-perturbation contract: an event on a
    // disabled handle must be a branch on a `None` — sub-ns, no allocation,
    // no clock read — so trace points can live on the serve hot path.
    let disabled = Obs::disabled().tracer();
    g.bench_function("event_disabled", |b| {
        b.iter(|| {
            black_box(&disabled)
                .event("bench.event")
                .u64("shard", black_box(3))
                .u64("epoch", black_box(17))
                .emit()
        })
    });
    g.bench_function("is_enabled_disabled", |b| b.iter(|| black_box(&disabled).is_enabled()));
    let live = Obs::enabled_logical_traced(4096).tracer();
    g.bench_function("event_live", |b| {
        b.iter(|| {
            black_box(&live)
                .event("bench.event")
                .u64("shard", black_box(3))
                .u64("epoch", black_box(17))
                .emit()
        })
    });
    g.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs/snapshot");
    let obs = Obs::enabled_logical();
    for i in 0..64 {
        obs.counter(&format!("bench.c{i}")).add(i);
        obs.histogram(&format!("bench.h{i}")).record(i);
    }
    g.bench_function("snapshot_128_metrics", |b| b.iter(|| black_box(obs.snapshot())));
    g.bench_function("jsonl_128_metrics", |b| {
        let snap = obs.snapshot();
        b.iter(|| black_box(snap.to_jsonl()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_counters,
    bench_histograms,
    bench_spans,
    bench_trace,
    bench_snapshot
);
criterion_main!(benches);
