//! Benchmarks of the online loop's dataset plumbing: what one retrain
//! cycle pays to assemble its rolling window. The [`AppCache`] splices
//! per-run blocks that were built once at ingest; the alternative is to
//! re-walk every run of the window from scratch each cycle.

use criterion::{criterion_group, criterion_main, Criterion};
use dfv_counters::FeatureSet;
use dfv_experiments::campaign::{run_campaign, CampaignConfig};
use dfv_experiments::{
    day_batches, window_dataset_with_policy, DeviationBuildObs, ForecastSpec, RunRecord,
};
use dfv_mlkit::dataset::MissingPolicy;
use dfv_obs::Obs;
use dfv_online::AppCache;

const WINDOW_DAYS: usize = 4;

fn fspec() -> ForecastSpec {
    ForecastSpec { m: 5, k: 5, features: FeatureSet::AppPlacement }
}

/// One fully ingested cache (first app of an 8-day quick campaign) plus the
/// raw day batches, shared by every benchmark.
fn ingested() -> (AppCache, Vec<Vec<RunRecord>>) {
    let mut config = CampaignConfig::quick();
    config.num_days = 8;
    let result = run_campaign(&config);
    let batches = day_batches(&result, &config);
    let mut cache = AppCache::new(result.datasets[0].spec, fspec(), MissingPolicy::MeanImpute);
    let mut days = Vec::new();
    for batch in &batches {
        cache.ingest_day(batch.day, &batch.runs[0].1);
        days.push(batch.runs[0].1.clone());
    }
    (cache, days)
}

fn bench_window_assembly(c: &mut Criterion) {
    let (cache, days) = ingested();
    let num_days = days.len();
    let mut g = c.benchmark_group("online/window_assembly");

    // The streaming path: splice cached per-run blocks for every retrain
    // day of the campaign.
    g.bench_function("incremental_splice", |b| {
        b.iter(|| {
            let mut rows = 0;
            for day in WINDOW_DAYS - 1..num_days {
                rows += cache.forecast_window(day, WINDOW_DAYS).x.rows();
            }
            rows
        })
    });

    // The naive alternative: rebuild each window from the raw runs, walking
    // every step of every run again on every cycle.
    g.bench_function("full_rebuild", |b| {
        b.iter(|| {
            let mut rows = 0;
            for day in WINDOW_DAYS - 1..num_days {
                let runs: Vec<&RunRecord> = cache.window_runs(day, WINDOW_DAYS).iter().collect();
                rows +=
                    window_dataset_with_policy(&runs, &fspec(), MissingPolicy::MeanImpute).x.rows();
            }
            rows
        })
    });
    g.finish();
}

fn bench_ingest_and_deviation(c: &mut Criterion) {
    let (cache, days) = ingested();
    let num_days = days.len();
    let mut g = c.benchmark_group("online/cycle");

    // Day-by-day ingest of the whole campaign (block building included).
    g.bench_function("stream_ingest_8_days", |b| {
        b.iter(|| {
            let mut fresh = AppCache::new(cache.spec, fspec(), MissingPolicy::MeanImpute);
            for (day, runs) in days.iter().enumerate() {
                fresh.ingest_day(day, runs);
            }
            fresh.len()
        })
    });

    // The deviation side of one retrain cycle: window trend + centered rows.
    let telemetry = DeviationBuildObs::new(&Obs::disabled(), MissingPolicy::MeanImpute);
    g.bench_function("deviation_window", |b| {
        b.iter(|| {
            let (data, _, _) =
                cache.deviation_window(num_days - 1, WINDOW_DAYS, &telemetry).unwrap();
            data.x.rows()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_window_assembly, bench_ingest_and_deviation);
criterion_main!(benches);
