//! Benchmarks of minimal, Valiant and UGAL-adaptive routing on the full
//! Cori topology — the innermost hot loop of the congestion model.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dfv_dragonfly::config::DragonflyConfig;
use dfv_dragonfly::ids::{Idx, RouterId};
use dfv_dragonfly::load::ChannelLoads;
use dfv_dragonfly::routing::{minimal_route, route_flow, valiant_route, IntraOrder, RoutingPolicy};
use dfv_dragonfly::topology::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_routing(c: &mut Criterion) {
    let topo = Topology::new(DragonflyConfig::cori()).unwrap();
    let mut loads = ChannelLoads::new(&topo);
    let mut rng = StdRng::seed_from_u64(1);
    // Pre-existing load so the adaptive comparisons are non-trivial.
    for _ in 0..5000 {
        let ch = dfv_dragonfly::ids::ChannelId(rng.gen_range(0..topo.num_channels()) as u32);
        loads.add(ch, rng.gen_range(0.0..5.0e9));
    }
    let pairs: Vec<(RouterId, RouterId)> = (0..1024)
        .map(|_| {
            (
                RouterId::from_index(rng.gen_range(0..topo.num_routers())),
                RouterId::from_index(rng.gen_range(0..topo.num_routers())),
            )
        })
        .collect();

    let mut g = c.benchmark_group("routing");
    g.bench_function("minimal", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % pairs.len();
            let (s, d) = pairs[i];
            black_box(minimal_route(&topo, s, d, IntraOrder::GreenFirst, 0))
        })
    });
    g.bench_function("valiant", |b| {
        let mut i = 0usize;
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            i = (i + 1) % pairs.len();
            let (s, d) = pairs[i];
            let mid = dfv_dragonfly::ids::GroupId(rng.gen_range(0..topo.num_groups()) as u16);
            black_box(valiant_route(&topo, s, d, mid, 0, 1, IntraOrder::GreenFirst))
        })
    });
    g.bench_function("adaptive_ugal", |b| {
        let mut i = 0usize;
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| {
            i = (i + 1) % pairs.len();
            let (s, d) = pairs[i];
            black_box(route_flow(&topo, s, d, 1.0e6, RoutingPolicy::default(), &loads, &mut rng))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
