//! Benchmarks of topology construction and coordinate algebra: the cost of
//! standing up a full Cori and of the hot per-flow lookups.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dfv_dragonfly::config::DragonflyConfig;
use dfv_dragonfly::ids::{Idx, NodeId, RouterId};
use dfv_dragonfly::topology::Topology;

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("topology/build");
    g.sample_size(20);
    g.bench_function("small", |b| {
        b.iter(|| Topology::new(black_box(DragonflyConfig::small())).unwrap())
    });
    g.bench_function("cori", |b| {
        b.iter(|| Topology::new(black_box(DragonflyConfig::cori())).unwrap())
    });
    g.finish();
}

fn bench_lookups(c: &mut Criterion) {
    let topo = Topology::new(DragonflyConfig::cori()).unwrap();
    let mut g = c.benchmark_group("topology/lookup");
    g.bench_function("coords", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 977) % topo.num_routers();
            black_box(topo.coords(RouterId::from_index(i)))
        })
    });
    g.bench_function("router_of_node", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 977) % topo.num_nodes();
            black_box(topo.router_of_node(NodeId::from_index(i)))
        })
    });
    g.bench_function("channel_info", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 977) % topo.num_channels();
            black_box(topo.channel_info(dfv_dragonfly::ids::ChannelId::from_index(i)))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_build, bench_lookups);
criterion_main!(benches);
