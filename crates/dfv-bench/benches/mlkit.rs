//! Benchmarks of the ML substrate: GBR training (the deviation model's
//! workhorse), RFE, attention training (the forecaster) and the mutual
//! information scan of the neighborhood analysis.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dfv_mlkit::attention::{AttentionForecaster, AttentionParams};
use dfv_mlkit::dataset::{Dataset, WindowDataset};
use dfv_mlkit::gbr::{Gbr, GbrParams};
use dfv_mlkit::matrix::Matrix;
use dfv_mlkit::mi::mutual_information_binary;
use dfv_mlkit::rfe::{rfe, RfeParams};
use dfv_mlkit::ridge::Ridge;
use dfv_mlkit::tree::{RegressionTree, TreeParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthetic deviation-style dataset: n samples x 13 counters.
fn synth(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Matrix::zeros(n, 13);
    let mut y = Vec::with_capacity(n);
    for r in 0..n {
        let mut target = 0.0;
        for c in 0..13 {
            let v: f64 = rng.gen_range(-1.0..1.0);
            x.set(r, c, v);
            if c == 3 || c == 10 {
                target += 5.0 * v;
            }
        }
        y.push(target + 0.1 * rng.gen_range(-1.0..1.0));
    }
    Dataset::new(x, y, (0..13).map(|i| format!("f{i}")).collect())
}

fn synth_windows(runs: usize, t: usize, m: usize, k: usize, h: usize, seed: u64) -> WindowDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = WindowDataset::empty(m, h, k);
    for _ in 0..runs {
        let steps: Vec<Vec<f64>> =
            (0..t).map(|_| (0..h).map(|_| rng.gen_range(0.0..1.0e9)).collect()).collect();
        let times: Vec<f64> = steps.iter().map(|s| 1.0 + s[0] / 1.0e9).collect();
        data.push_run(&steps, &times);
    }
    data
}

fn bench_gbr(c: &mut Criterion) {
    let data = synth(4000, 1);
    let mut g = c.benchmark_group("mlkit/gbr");
    g.sample_size(10);
    g.bench_function("fit_60_trees_4k_samples", |b| {
        b.iter(|| Gbr::fit(&data.x, &data.y, &GbrParams::default()))
    });
    let model = Gbr::fit(&data.x, &data.y, &GbrParams::default());
    g.bench_function("predict_4k", |b| b.iter(|| model.predict(black_box(&data.x))));
    g.finish();
}

/// Single-tree fits, pre-sorted vs the naive per-node sorting baseline
/// (compiled via dfv-mlkit's `naive` feature). `RegressionTree::fit`
/// includes the context build, so this is the honest one-shot cost; the
/// boosting and RFE paths amortize the pre-sort across many trees.
fn bench_tree_fit(c: &mut Criterion) {
    let mut g = c.benchmark_group("mlkit/tree_fit");
    g.sample_size(10);
    for &n in &[200usize, 2000, 20000] {
        let data = synth(n, 7);
        let idx: Vec<usize> = (0..n).collect();
        g.bench_function(format!("presorted/{n}"), |b| {
            b.iter(|| RegressionTree::fit(&data.x, &data.y, &idx, &TreeParams::default()))
        });
        g.bench_function(format!("naive/{n}"), |b| {
            b.iter(|| RegressionTree::fit_naive(&data.x, &data.y, &idx, &TreeParams::default()))
        });
    }
    g.finish();
}

/// Full GBR fits (60 trees, 13 features), pre-sorted vs naive baseline —
/// the numbers recorded in BENCH_mlkit.json at the repo root.
fn bench_gbr_fit_vs_baseline(c: &mut Criterion) {
    let mut g = c.benchmark_group("mlkit/gbr_fit");
    g.sample_size(10);
    for &n in &[200usize, 2000, 20000] {
        let data = synth(n, 1);
        g.bench_function(format!("presorted/{n}"), |b| {
            b.iter(|| Gbr::fit(&data.x, &data.y, &GbrParams::default()))
        });
        g.bench_function(format!("baseline/{n}"), |b| {
            b.iter(|| Gbr::fit_naive(&data.x, &data.y, &GbrParams::default()))
        });
    }
    g.finish();
}

fn bench_rfe(c: &mut Criterion) {
    let data = synth(1000, 2);
    let params =
        RfeParams { folds: 3, gbr: GbrParams { n_trees: 20, ..Default::default() }, seed: 1 };
    let mut g = c.benchmark_group("mlkit/rfe");
    g.sample_size(10);
    g.bench_function("3fold_13features_1k_samples", |b| b.iter(|| rfe(&data, None, &params)));
    g.finish();
}

fn bench_attention(c: &mut Criterion) {
    let data = synth_windows(20, 40, 10, 5, 13, 3);
    let params = AttentionParams { epochs: 10, ..Default::default() };
    let mut g = c.benchmark_group("mlkit/attention");
    g.sample_size(10);
    g.bench_function("fit_10_epochs", |b| b.iter(|| AttentionForecaster::fit(&data, &params)));
    let model = AttentionForecaster::fit(&data, &params);
    g.bench_function("predict_all_windows", |b| b.iter(|| model.predict(black_box(&data))));
    g.finish();
}

fn bench_ridge_and_mi(c: &mut Criterion) {
    let data = synth(4000, 4);
    let mut g = c.benchmark_group("mlkit/baselines");
    g.bench_function("ridge_fit_4k_x_13", |b| b.iter(|| Ridge::fit(&data.x, &data.y, 1.0)));

    let mut rng = StdRng::seed_from_u64(5);
    let xs: Vec<bool> = (0..200).map(|_| rng.gen()).collect();
    let ys: Vec<bool> = xs.iter().map(|&x| if rng.gen_bool(0.8) { x } else { rng.gen() }).collect();
    g.bench_function("mutual_information_200_runs", |b| {
        b.iter(|| mutual_information_binary(black_box(&xs), black_box(&ys)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_gbr,
    bench_tree_fit,
    bench_gbr_fit_vs_baseline,
    bench_rfe,
    bench_attention,
    bench_ridge_and_mi
);
criterion_main!(benches);
