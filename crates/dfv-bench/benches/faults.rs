//! Fault-injection overhead benchmarks: the per-sample verdict (a few
//! splitmix64 rounds), bulk mask generation, and the missing-data
//! imputation passes that faulted telemetry funnels through.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dfv_faults::{FaultPlan, FaultSite, Schedule};
use dfv_mlkit::dataset::{impute_series, MissingPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const WIDTH: usize = 13;

/// A step series with a given fraction of NaN holes.
fn sparse_series(steps: usize, gap: f64, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..steps)
        .map(|_| {
            (0..WIDTH)
                .map(|_| if rng.gen_bool(gap) { f64::NAN } else { rng.gen_range(0.0..1e6) })
                .collect()
        })
        .collect()
}

fn bench_verdict(c: &mut Criterion) {
    let plan = FaultPlan::gaps(42, 0.1);
    let mut g = c.benchmark_group("faults/verdict");
    g.bench_function("fires_10k", |b| {
        b.iter(|| {
            let mut fired = 0u64;
            for i in 0..10_000u64 {
                fired += plan.fires(FaultSite::CounterDropout, black_box(7), i) as u64;
            }
            black_box(fired)
        })
    });
    g.bench_function("mask_1k", |b| {
        b.iter(|| black_box(plan.mask(FaultSite::LdmsIoGap, black_box(3), 1024)))
    });
    let periodic = FaultPlan {
        counter_dropout: Schedule::Periodic { period: 10, phase: 3 },
        ..FaultPlan::none()
    };
    g.bench_function("fires_periodic_10k", |b| {
        b.iter(|| {
            let mut fired = 0u64;
            for i in 0..10_000u64 {
                fired += periodic.fires(FaultSite::CounterDropout, black_box(7), i) as u64;
            }
            black_box(fired)
        })
    });
    g.finish();
}

fn bench_imputation(c: &mut Criterion) {
    let mut g = c.benchmark_group("faults/impute");
    for (label, policy) in
        [("locf_1k", MissingPolicy::Locf), ("mean_1k", MissingPolicy::MeanImpute)]
    {
        let template = sparse_series(1024, 0.1, 9);
        g.bench_function(label, |b| {
            b.iter_batched(
                || template.clone(),
                |mut series| {
                    impute_series(&mut series, policy);
                    black_box(series)
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    // The dense fast path every fault-free campaign takes: must be ~free.
    let dense = sparse_series(1024, 0.0, 9);
    g.bench_function("dense_noop_1k", |b| {
        b.iter_batched(
            || dense.clone(),
            |mut series| {
                impute_series(&mut series, MissingPolicy::MeanImpute);
                black_box(series)
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_verdict, bench_imputation);
criterion_main!(benches);
