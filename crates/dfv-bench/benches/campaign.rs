//! Benchmarks of campaign-level operations: the scheduler event loop,
//! background-job routing, the incremental simulation core, and a complete
//! (small) campaign on both the fast path and the sequential oracle.

use criterion::{criterion_group, criterion_main, Criterion};
use dfv_dragonfly::config::DragonflyConfig;
use dfv_dragonfly::ids::NodeId;
use dfv_dragonfly::network::{
    BackgroundTraffic, NetworkSim, RoutedContribution, SimScratch, SimSession,
};
use dfv_dragonfly::placement::AllocationPolicy;
use dfv_dragonfly::topology::Topology;
use dfv_dragonfly::traffic::Traffic;
use dfv_experiments::campaign::{run_campaign, run_campaign_naive, CampaignConfig};
use dfv_scheduler::cluster::Cluster;
use dfv_scheduler::job::{JobRequest, UserId};
use dfv_scheduler::users::Archetype;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("campaign/scheduler");
    g.sample_size(10);
    g.bench_function("1000_jobs_fcfs_backfill", |b| {
        b.iter(|| {
            let nodes: Vec<NodeId> = (0..2048).map(NodeId).collect();
            let mut cluster = Cluster::new(nodes, AllocationPolicy::Fragmented { scatter: 0.5 }, 1);
            for i in 0..1000u64 {
                cluster.advance_to(i as f64 * 5.0);
                cluster.submit(JobRequest {
                    user: UserId((i % 20) as u32),
                    name: "bench".into(),
                    num_nodes: 16 + (i % 200) as usize,
                    duration: 300.0,
                    submit_time: i as f64 * 5.0,
                });
            }
            cluster.drain()
        })
    });
    g.finish();
}

fn bench_background_routing(c: &mut Criterion) {
    let topo = Topology::new(DragonflyConfig::cori()).unwrap();
    let sim = NetworkSim::new(&topo);
    let nodes: Vec<NodeId> = (0..1024).map(NodeId).collect();
    let io: Vec<NodeId> = (12_000..12_064).map(NodeId).collect();
    let mut g = c.benchmark_group("campaign/background_routing");
    g.sample_size(10);
    g.bench_function("genome_assembly_1024_nodes", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(9);
            let traffic = Archetype::GenomeAssembly.traffic(&nodes, &io, 0.25, &mut rng);
            sim.route_traffic(&traffic, None, 9)
        })
    });
    g.finish();
}

/// The phase-2 hot loop in isolation on the full Cori machine: one probe
/// step against eight background jobs, naive (dense re-solve) versus the
/// incremental [`SimSession`], plus a splice-churn variant that forces a
/// background re-resolve every step.
fn bench_incremental_core(c: &mut Criterion) {
    let topo = Topology::new(DragonflyConfig::cori()).unwrap();
    let sim = NetworkSim::new(&topo);
    let io: Vec<NodeId> = (12_000..12_064).map(NodeId).collect();
    let contribs: Vec<(BackgroundTraffic, RoutedContribution)> = (0..8)
        .map(|j| {
            let nodes: Vec<NodeId> = (j * 256..(j + 1) * 256).map(|n| NodeId(n as u32)).collect();
            let mut rng = StdRng::seed_from_u64(50 + j as u64);
            let traffic = Archetype::GenomeAssembly.traffic(&nodes, &io, 0.25, &mut rng);
            let dense = sim.route_traffic(&traffic, None, 50 + j as u64);
            let sparse = RoutedContribution::from_dense(&dense);
            (dense, sparse)
        })
        .collect();
    let job: Traffic = {
        let nodes: Vec<NodeId> = (4096..4160).map(NodeId).collect();
        let mut rng = StdRng::seed_from_u64(77);
        Archetype::NBody.traffic(&nodes, &io, 1.0, &mut rng)
    };

    let mut g = c.benchmark_group("campaign/incremental_core");
    g.sample_size(10);

    let mut bg = BackgroundTraffic::zero(&topo);
    for (dense, _) in &contribs {
        bg.add_scaled(dense, 1.0);
    }
    let mut scratch = SimScratch::new(&topo);
    g.bench_function("step_naive", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            sim.simulate_step(&job, &bg, seed, &mut scratch)
        })
    });

    let mut session = SimSession::new(&sim);
    for (_, sparse) in &contribs {
        session.splice_background(sparse, 1.0);
    }
    g.bench_function("step_incremental", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            session.step(&job, seed)
        })
    });

    g.bench_function("splice_and_step_incremental", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            let churn = &contribs[(seed as usize) % contribs.len()].1;
            session.splice_background(churn, 1.0);
            session.splice_background(churn, -1.0);
            session.step(&job, seed)
        })
    });
    g.finish();
}

fn bench_full_campaign(c: &mut Criterion) {
    let mut config = CampaignConfig::quick();
    config.num_days = 2;
    let mut g = c.benchmark_group("campaign/full");
    g.sample_size(10);
    g.bench_function("quick_2_days_fast", |b| b.iter(|| run_campaign(&config)));
    g.bench_function("quick_2_days_naive", |b| b.iter(|| run_campaign_naive(&config, None)));
    g.finish();
}

criterion_group!(
    benches,
    bench_scheduler,
    bench_background_routing,
    bench_incremental_core,
    bench_full_campaign
);
criterion_main!(benches);
