//! Benchmarks of campaign-level operations: the scheduler event loop,
//! background-job routing, and a complete (small) campaign — the pipeline
//! stages behind every figure.

use criterion::{criterion_group, criterion_main, Criterion};
use dfv_dragonfly::config::DragonflyConfig;
use dfv_dragonfly::ids::NodeId;
use dfv_dragonfly::network::NetworkSim;
use dfv_dragonfly::placement::AllocationPolicy;
use dfv_dragonfly::topology::Topology;
use dfv_experiments::campaign::{run_campaign, CampaignConfig};
use dfv_scheduler::cluster::Cluster;
use dfv_scheduler::job::{JobRequest, UserId};
use dfv_scheduler::users::Archetype;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("campaign/scheduler");
    g.sample_size(10);
    g.bench_function("1000_jobs_fcfs_backfill", |b| {
        b.iter(|| {
            let nodes: Vec<NodeId> = (0..2048).map(NodeId).collect();
            let mut cluster = Cluster::new(nodes, AllocationPolicy::Fragmented { scatter: 0.5 }, 1);
            for i in 0..1000u64 {
                cluster.advance_to(i as f64 * 5.0);
                cluster.submit(JobRequest {
                    user: UserId((i % 20) as u32),
                    name: "bench".into(),
                    num_nodes: 16 + (i % 200) as usize,
                    duration: 300.0,
                    submit_time: i as f64 * 5.0,
                });
            }
            cluster.drain()
        })
    });
    g.finish();
}

fn bench_background_routing(c: &mut Criterion) {
    let topo = Topology::new(DragonflyConfig::cori()).unwrap();
    let sim = NetworkSim::new(&topo);
    let nodes: Vec<NodeId> = (0..1024).map(NodeId).collect();
    let io: Vec<NodeId> = (12_000..12_064).map(NodeId).collect();
    let mut g = c.benchmark_group("campaign/background_routing");
    g.sample_size(10);
    g.bench_function("genome_assembly_1024_nodes", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(9);
            let traffic = Archetype::GenomeAssembly.traffic(&nodes, &io, 0.25, &mut rng);
            sim.route_traffic(&traffic, None, 9)
        })
    });
    g.finish();
}

fn bench_full_campaign(c: &mut Criterion) {
    let mut config = CampaignConfig::quick();
    config.num_days = 2;
    let mut g = c.benchmark_group("campaign/full");
    g.sample_size(10);
    g.bench_function("quick_2_days", |b| b.iter(|| run_campaign(&config)));
    g.finish();
}

criterion_group!(benches, bench_scheduler, bench_background_routing, bench_full_campaign);
criterion_main!(benches);
