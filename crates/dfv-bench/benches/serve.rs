//! Serving-path benchmarks: single-request latency through the full
//! queue/batcher round trip, micro-batched throughput at batch caps
//! B in {1, 8, 32} under 4 concurrent producers, and the cached path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dfv_mlkit::gbr::{Gbr, GbrParams};
use dfv_mlkit::matrix::Matrix;
use dfv_serve::{ModelArtifact, ModelRegistry, Request, Response, ServeConfig, Service};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const WIDTH: usize = 13;

/// A deviation artifact over a synthetic counter dataset.
fn artifact(seed: u64) -> ModelArtifact {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 800;
    let mut x = Matrix::zeros(n, WIDTH);
    let mut y = Vec::with_capacity(n);
    for r in 0..n {
        let mut target = 0.0;
        for c in 0..WIDTH {
            let v: f64 = rng.gen_range(-1.0..1.0);
            x.set(r, c, v);
            if c == 2 || c == 7 {
                target += 3.0 * v;
            }
        }
        y.push(target);
    }
    let params = GbrParams { n_trees: 30, ..GbrParams::default() };
    let gbr = Gbr::fit(&x, &y, &params);
    let names = (0..WIDTH).map(|i| format!("f{i}")).collect();
    ModelArtifact::deviation("bench-16", 1, dfv_counters::FeatureSet::App, names, gbr)
}

fn start_service(max_batch: usize, cache_capacity: usize) -> Service {
    let registry = Arc::new(ModelRegistry::new());
    registry.install(artifact(1)).unwrap();
    Service::start(
        registry,
        ServeConfig { queue_capacity: 512, max_batch, cache_capacity, ..ServeConfig::default() },
    )
}

/// Distinct rows so the prediction cache never answers (the model path).
fn fresh_rows(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| (0..WIDTH).map(|_| rng.gen_range(-1.0..1.0)).collect()).collect()
}

fn bench_single_request_latency(c: &mut Criterion) {
    let service = start_service(32, 4096);
    let handle = service.handle();
    let rows = fresh_rows(100_000, 2);
    let mut next = 0usize;
    let mut g = c.benchmark_group("serve/latency");
    g.bench_function("single_request_uncached", |b| {
        b.iter(|| {
            let row = rows[next % rows.len()].clone();
            next += 1;
            match handle
                .request(Request::PredictDeviation { app: "bench-16".into(), step_features: row })
            {
                Response::Prediction { value, .. } => black_box(value),
                other => panic!("unexpected response: {other:?}"),
            }
        })
    });
    let hot: Vec<f64> = rows[0].clone();
    g.bench_function("single_request_cached", |b| {
        b.iter(|| {
            match handle.request(Request::PredictDeviation {
                app: "bench-16".into(),
                step_features: hot.clone(),
            }) {
                Response::Prediction { value, .. } => black_box(value),
                other => panic!("unexpected response: {other:?}"),
            }
        })
    });
    g.finish();
    drop(handle);
    service.shutdown();
}

/// 4 producer threads push `per_thread` fresh requests each (retrying on
/// backpressure); returns once every request is answered.
fn pump(service: &Service, per_thread: usize, seed: u64) -> u64 {
    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for t in 0..4u64 {
            let handle = service.handle();
            workers.push(scope.spawn(move || {
                let rows = fresh_rows(per_thread, seed ^ (t + 1));
                let mut answered = 0u64;
                for row in rows {
                    loop {
                        let request = Request::PredictDeviation {
                            app: "bench-16".into(),
                            step_features: row.clone(),
                        };
                        match handle.request(request) {
                            Response::Prediction { .. } => {
                                answered += 1;
                                break;
                            }
                            Response::Rejected { retry_after } => std::thread::sleep(retry_after),
                            other => panic!("unexpected response: {other:?}"),
                        }
                    }
                }
                answered
            }));
        }
        workers.into_iter().map(|w| w.join().unwrap()).sum()
    })
}

fn bench_batched_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve/throughput_4_producers");
    g.sample_size(10);
    for max_batch in [1usize, 8, 32] {
        // Cache sized below the working set: throughput here measures the
        // batched model path, not cache hits.
        let service = start_service(max_batch, 64);
        let mut round = 0u64;
        g.bench_function(format!("400_requests_B{max_batch}"), |b| {
            b.iter(|| {
                round += 1;
                let answered = pump(&service, 100, round * 7919);
                assert_eq!(answered, 400);
            })
        });
        service.shutdown();
    }
    g.finish();
}

/// Flattened kernel vs pointer-tree oracle on the raw batch path (no
/// queue, no cache): the inference cycles a shard actually spends.
fn bench_flat_kernel(c: &mut Criterion) {
    let art = artifact(1);
    let gbr = match &art.model {
        dfv_serve::ModelKind::Deviation(g) => g.clone(),
        _ => unreachable!("artifact() builds a deviation model"),
    };
    let flat = gbr.flatten();
    let rows = fresh_rows(4096, 3);
    let mut x = Matrix::zeros(0, WIDTH);
    for row in &rows {
        x.push_row(row);
    }
    // Witness before timing: the two paths must agree bit-for-bit.
    let oracle = gbr.predict(&x);
    let fast = flat.predict_batch(&x);
    assert!(oracle.iter().zip(&fast).all(|(a, b)| a.to_bits() == b.to_bits()));

    let mut g = c.benchmark_group("serve/kernel_4096_rows");
    g.bench_function("pointer_tree", |b| b.iter(|| black_box(gbr.predict(&x))));
    g.bench_function("flat_forest", |b| b.iter(|| black_box(flat.predict_batch(&x))));
    g.finish();
}

criterion_group!(
    benches,
    bench_single_request_latency,
    bench_batched_throughput,
    bench_flat_kernel
);
criterion_main!(benches);
