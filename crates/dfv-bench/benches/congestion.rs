//! Benchmarks of the congestion model: simulating one application step and
//! producing machine-wide telemetry, per application, on the Cori topology.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dfv_dragonfly::config::DragonflyConfig;
use dfv_dragonfly::ids::NodeId;
use dfv_dragonfly::network::{BackgroundTraffic, NetworkSim, SimScratch};
use dfv_dragonfly::telemetry::StepTelemetry;
use dfv_dragonfly::topology::Topology;
use dfv_dragonfly::traffic::Traffic;
use dfv_workloads::app::{AppKind, AppSpec};

fn bench_step(c: &mut Criterion) {
    let topo = Topology::new(DragonflyConfig::cori()).unwrap();
    let sim = NetworkSim::new(&topo);
    let bg = BackgroundTraffic::zero(&topo);

    let mut g = c.benchmark_group("congestion/step");
    g.sample_size(10);
    for kind in AppKind::ALL {
        let spec = AppSpec { kind, num_nodes: 128 };
        let nodes: Vec<NodeId> = (0..128).map(NodeId).collect();
        let app = spec.instantiate(&nodes, 1);
        let mut traffic = Traffic::new();
        app.step_traffic(spec.num_steps() / 2, &mut traffic);
        g.bench_function(format!("{}-128", kind.name()), |b| {
            b.iter_batched_ref(
                || SimScratch::new(&topo),
                |scratch| sim.simulate_step(&traffic, &bg, 1, scratch),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_telemetry(c: &mut Criterion) {
    let topo = Topology::new(DragonflyConfig::cori()).unwrap();
    let sim = NetworkSim::new(&topo);
    let bg = BackgroundTraffic::zero(&topo);
    let spec = AppSpec { kind: AppKind::Milc, num_nodes: 128 };
    let nodes: Vec<NodeId> = (0..128).map(NodeId).collect();
    let app = spec.instantiate(&nodes, 1);
    let mut traffic = Traffic::new();
    app.step_traffic(40, &mut traffic);
    let mut scratch = SimScratch::new(&topo);
    let out = sim.simulate_step(&traffic, &bg, 1, &mut scratch);
    let mut telemetry = StepTelemetry::new(topo.num_routers());

    let mut g = c.benchmark_group("congestion/telemetry");
    g.sample_size(20);
    g.bench_function("machine_wide_fill", |b| {
        b.iter(|| sim.fill_telemetry(&scratch, &bg, out.comm_time, &mut telemetry))
    });
    g.finish();
}

criterion_group!(benches, bench_step, bench_telemetry);
criterion_main!(benches);
