//! # dragonfly-variability
//!
//! A full reproduction of *"The Case of Performance Variability on
//! Dragonfly-based Systems"* (Bhatele et al., IPDPS 2020) as a Rust
//! workspace: a simulated Cray XC dragonfly machine (topology, adaptive
//! routing, congestion, Aries hardware counters, Slurm-like scheduling and a
//! synthetic production user population) plus the paper's complete analysis
//! pipeline (mutual-information neighborhood analysis, GBR + RFE deviation
//! prediction, and attention-based execution-time forecasting), implemented
//! from scratch.
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! module names. See the README for the architecture overview and the
//! `repro` binary (`cargo run --release -p dfv-bench --bin repro -- all`)
//! for regenerating every table and figure of the paper.
//!
//! ## Quickstart
//!
//! ```
//! use dragonfly_variability::prelude::*;
//!
//! // Build a small dragonfly, run one application step on an idle machine.
//! let topo = Topology::new(DragonflyConfig::small()).unwrap();
//! let sim = NetworkSim::new(&topo);
//! let spec = AppSpec { kind: AppKind::Milc, num_nodes: 16 };
//! let nodes: Vec<NodeId> = (0..16).map(NodeId).collect();
//! let app = spec.instantiate(&nodes, 7);
//!
//! let mut traffic = Traffic::new();
//! app.step_traffic(0, &mut traffic);
//! let background = BackgroundTraffic::zero(&topo);
//! let mut scratch = SimScratch::new(&topo);
//! let out = sim.simulate_step(&traffic, &background, 1, &mut scratch);
//! assert!(out.comm_time > 0.0);
//! ```

/// Workspace-wide observability: metrics registry, spans and exporters
/// with a zero-perturbation guarantee when disabled.
pub use dfv_obs as obs;

/// The dragonfly network substrate: topology, routing, congestion model.
pub use dfv_dragonfly as dragonfly;

/// Deterministic fault injection: seeded fault plans for counter dropout,
/// collection gaps, stale samples and serving-path disruptions.
pub use dfv_faults as faults;

/// Aries hardware counters, AriesNCL-style sessions and LDMS sampling.
pub use dfv_counters as counters;

/// The four application communication skeletons (Table I).
pub use dfv_workloads as workloads;

/// The Slurm-like batch scheduler and production user population.
pub use dfv_scheduler as scheduler;

/// The from-scratch ML kit (trees, GBR, RFE, MI, attention forecaster).
pub use dfv_mlkit as mlkit;

/// The online model-serving subsystem (registry, micro-batching, caching).
pub use dfv_serve as serve;

/// The campaign driver and the paper's three analyses.
pub use dfv_experiments as experiments;

/// The online learning loop: streaming ingest, drift detection, rolling
/// retrains and automatic model promotion.
pub use dfv_online as online;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use dfv_counters::{
        AriesSession, Counter, CounterSnapshot, FaultyAriesSession, FaultyLdmsSampler, FeatureSet,
        LdmsSampler, SystemLayout,
    };
    pub use dfv_dragonfly::{
        AllocationPolicy, BackgroundTraffic, ChannelLoads, DragonflyConfig, NetworkSim, NodeId,
        Placement, RouterId, RoutingPolicy, SimScratch, StepTelemetry, Topology, Traffic,
    };
    pub use dfv_experiments::{
        analyze_deviation, gap_fraction_ablation, run_campaign, run_campaign_faulted,
        run_campaign_faulted_observed, run_campaign_observed, simulate_long_run, train_and_export,
        AppDataset, CampaignConfig, CampaignResult, RunRecord, ServeTrainConfig,
    };
    pub use dfv_faults::{FaultPlan, FaultSite, Schedule, VerdictCounters};
    pub use dfv_mlkit::{
        AttentionForecaster, AttentionParams, Dataset, Gbr, GbrParams, Matrix, MissingPolicy,
        Ridge, WindowDataset,
    };
    pub use dfv_obs::{
        chrome_trace, events_jsonl, trace_id, Obs, Snapshot, TraceCtx, TraceEvent, TraceQuery,
        Tracer,
    };
    pub use dfv_online::{
        run_online, run_online_faulted_observed, DriftDetector, DriftParams, DriftVerdict,
        OnlineConfig, OnlineReport, PromotionOutcome,
    };
    pub use dfv_scheduler::{Archetype, Cluster, JobRequest, UserId};
    pub use dfv_serve::{
        run_load, run_load_slo, CompiledArtifact, EpochSnapshot, Fleet, FleetConfig, FleetHandle,
        FleetStats, LoadMode, LoadReport, LoadSpec, ModelArtifact, ModelKey, ModelRegistry,
        Request, Response, ServeConfig, ServeStats, Service, SloAlert, SloConfig, SloMonitor,
    };
    pub use dfv_workloads::{AppKind, AppRun, AppSpec, MpiProfile, MpiRoutine};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let topo = Topology::new(DragonflyConfig::small()).unwrap();
        assert_eq!(topo.num_groups(), 4);
        assert_eq!(Counter::ALL.len(), 13);
        assert_eq!(AppSpec::table1().len(), 6);
    }
}
