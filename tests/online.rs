//! Online-loop integration, driven through the public facade.
//!
//! Invariants under test: the disabled loop is a bit-for-bit no-op against
//! the offline train-once pipeline; on a campaign whose workload shifts
//! mid-way the loop detects drift, retrains, and ends below the frozen
//! train-once baseline; and the whole trace is deterministic and
//! unperturbed by telemetry.

use dragonfly_variability::experiments::{train_artifacts, WorkloadShift};
use dragonfly_variability::prelude::*;
use std::sync::OnceLock;

/// The drift-recovery campaign: stable for six days, then the background
/// users route 2.5x heavier traffic for eight more.
fn shifted_config() -> CampaignConfig {
    let mut config = CampaignConfig::quick();
    config.num_days = 14;
    config.workload_shift =
        Some(WorkloadShift { at_day: 6, intensity_factor: 2.5, heavier_benign: true });
    config
}

fn shifted() -> &'static CampaignResult {
    static SHIFTED: OnceLock<CampaignResult> = OnceLock::new();
    SHIFTED.get_or_init(|| run_campaign(&shifted_config()))
}

#[test]
fn disabled_online_loop_is_the_offline_pipeline_bit_for_bit() {
    let config = CampaignConfig::quick();
    let result = run_campaign(&config);
    let online = OnlineConfig::disabled();
    let outcome = run_online(&result, &config, &online);

    // No streaming happened at all...
    assert!(outcome.report.days.is_empty());
    assert!(outcome.report.promotions.is_empty());
    // ...and the registry holds exactly the train-once artifacts.
    let offline = train_artifacts(&result, &online.train_config(1));
    assert_eq!(outcome.registry.len(), offline.len());
    for artifact in offline {
        let key = ModelKey { app: artifact.app.clone(), task: artifact.task() };
        let served = outcome.registry.get(&key).expect("every offline artifact is live");
        assert_eq!(*served, artifact, "{key} diverged from the offline pipeline");
    }
}

#[test]
fn workload_shift_is_detected_and_the_loop_recovers_below_frozen() {
    let config = shifted_config();
    let report = run_online(shifted(), &config, &OnlineConfig::quick()).report;

    // The stable epoch never retrains.
    let pre_shift: Vec<_> = report.promotions.iter().filter(|p| p.day < 6).collect();
    assert!(pre_shift.is_empty(), "stable epoch must not retrain: {pre_shift:?}");

    // The shift is detected and at least one model is promoted.
    assert!(report.days.iter().any(|r| r.verdict == DriftVerdict::Triggered));
    let installed = report
        .promotions
        .iter()
        .filter(|p| matches!(p.outcome, PromotionOutcome::Installed { .. }))
        .count();
    assert!(installed > 0, "the workload shift must cause promotions");
    for (model, version) in &report.final_versions {
        assert!(*version >= 1, "{model} never installed");
    }

    // Recovery: over the last two days the retrained models beat the
    // frozen train-once counterfactual.
    let last = config.num_days - 1;
    let online_tail = report.mean_online_mape(last - 1..=last);
    let frozen_tail = report.mean_frozen_mape(last - 1..=last);
    assert!(
        online_tail < frozen_tail,
        "online tail MAPE {online_tail:.2}% must end below frozen {frozen_tail:.2}%"
    );
}

#[test]
fn online_loop_is_deterministic_and_unperturbed_by_telemetry() {
    let config = shifted_config();
    let online = OnlineConfig::quick();
    let obs = Obs::enabled();
    let observed =
        run_online_faulted_observed(shifted(), &config, &online, &FaultPlan::none(), &obs);
    let silent = run_online(shifted(), &config, &online);
    assert_eq!(observed.report, silent.report, "telemetry must not perturb the loop");

    // The drift story is visible in telemetry: per-app holdout gauges and
    // the retrain trigger counter.
    let snapshot = obs.snapshot();
    assert!(snapshot.counter("online.retrain.triggered").unwrap_or(0) > 0);
    let gauges =
        snapshot.metrics.iter().filter(|m| m.name.starts_with("online.drift.mape{")).count();
    assert_eq!(gauges, config.apps.len(), "one holdout-MAPE gauge per app");
}

#[test]
fn promotions_install_flattened_serving_kernels() {
    // The promotion path feeds the SAME registry the serving fleet reads,
    // so every installed deviation model must come out compiled: a
    // flattened forest bit-identical to its pointer-tree oracle.
    use dragonfly_variability::serve::TaskKind;
    let config = CampaignConfig::quick();
    let result = run_campaign(&config);
    let outcome = run_online(&result, &config, &OnlineConfig::disabled());
    assert!(!outcome.registry.is_empty());
    for (key, _version) in outcome.registry.models() {
        let compiled = outcome.registry.get_compiled(&key).expect("listed key is live");
        match key.task {
            TaskKind::Deviation => {
                let flat = compiled.flat().expect("deviation installs compile to flat kernels");
                assert_eq!(flat.num_features(), compiled.input_width());
                let mut probe = Matrix::zeros(0, compiled.input_width());
                for i in 0..16 {
                    probe.push_row(
                        &(0..compiled.input_width())
                            .map(|j| ((i * 3 + j) % 7) as f64 * 0.5)
                            .collect::<Vec<_>>(),
                    );
                }
                let oracle = compiled.artifact().predict_batch(&probe);
                let fast = compiled.predict_batch(&probe);
                for (a, b) in oracle.iter().zip(&fast) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{key} compiled kernel diverged");
                }
            }
            TaskKind::Forecast => {
                assert!(compiled.flat().is_none(), "{key} forecasters pass through uncompiled");
            }
        }
    }
}
