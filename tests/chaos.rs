//! Chaos suite: the fault-injection layer driven through the public facade.
//!
//! Invariants under test: a [`FaultPlan::none`] plan is a bit-for-bit no-op
//! on the campaign; the same plan and seed reproduce the same faults; gap
//! faults degrade model quality boundedly under every missing-data policy
//! and never panic; and the serving path keeps draining — nothing dropped,
//! nothing panicking — under queue saturation with injected batcher stalls.

use dragonfly_variability::experiments::{analyze_deviation_with_policy, WorkloadShift};
use dragonfly_variability::mlkit::gbr::{Gbr, GbrParams};
use dragonfly_variability::mlkit::rfe::RfeParams;
use dragonfly_variability::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// One small single-app campaign shared by the telemetry-side tests.
fn small_config() -> CampaignConfig {
    CampaignConfig {
        num_days: 2,
        apps: vec![AppSpec { kind: AppKind::Milc, num_nodes: 16 }],
        ..CampaignConfig::quick()
    }
}

fn clean() -> &'static CampaignResult {
    static CLEAN: OnceLock<CampaignResult> = OnceLock::new();
    CLEAN.get_or_init(|| run_campaign(&small_config()))
}

fn rfe_params() -> RfeParams {
    RfeParams { folds: 3, gbr: GbrParams { n_trees: 15, ..Default::default() }, seed: 3 }
}

/// Every f64 the campaign measured, as raw bits (NaN-safe comparison).
fn telemetry_bits(result: &CampaignResult) -> Vec<u64> {
    let mut bits = Vec::new();
    for ds in &result.datasets {
        for run in &ds.runs {
            for s in &run.steps {
                bits.push(s.time.to_bits());
                bits.extend(s.counters.iter().map(|v| v.to_bits()));
                bits.extend(s.io.iter().map(|v| v.to_bits()));
                bits.extend(s.sys.iter().map(|v| v.to_bits()));
            }
        }
    }
    bits
}

#[test]
fn none_plan_is_a_bit_for_bit_no_op() {
    let faulted = run_campaign_faulted(&small_config(), Some(&FaultPlan::none()));
    assert_eq!(clean().datasets, faulted.datasets);
    assert_eq!(telemetry_bits(clean()), telemetry_bits(&faulted));
}

#[test]
fn identical_plans_reproduce_identical_faults() {
    let plan = FaultPlan::gaps(99, 0.25);
    let a = run_campaign_faulted(&small_config(), Some(&plan));
    let b = run_campaign_faulted(&small_config(), Some(&plan));
    assert_eq!(telemetry_bits(&a), telemetry_bits(&b));
    // And the faults actually fired: some telemetry is missing.
    let missing = telemetry_bits(&a).iter().filter(|&&v| f64::from_bits(v).is_nan()).count();
    assert!(missing > 0, "a 25% gap plan must lose some samples");
}

#[test]
fn moderate_gaps_degrade_the_deviation_model_boundedly() {
    let params = rfe_params();
    let base =
        analyze_deviation_with_policy(&clean().datasets[0], &params, MissingPolicy::MeanImpute);
    let faulted = run_campaign_faulted(&small_config(), Some(&FaultPlan::gaps(17, 0.10)));
    for policy in [MissingPolicy::Locf, MissingPolicy::MeanImpute] {
        let analysis = analyze_deviation_with_policy(&faulted.datasets[0], &params, policy);
        assert_eq!(analysis.rfe.relevance.len(), 13);
        assert!((analysis.rfe.relevance.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let mape = analysis.rfe.mean_mape();
        assert!(mape.is_finite(), "{policy:?}: MAPE must stay finite under gaps");
        // Graceful, not catastrophic: 10% gaps may cost accuracy, but the
        // imputed model stays in the same regime as the clean one.
        assert!(
            mape < base.rfe.mean_mape() * 3.0 + 15.0,
            "{policy:?}: faulted MAPE {mape} vs clean {}",
            base.rfe.mean_mape()
        );
    }
}

#[test]
fn escalating_gaps_never_panic_under_any_policy() {
    let params =
        RfeParams { folds: 3, gbr: GbrParams { n_trees: 8, ..Default::default() }, seed: 5 };
    for (i, fraction) in [0.05, 0.3, 0.6].into_iter().enumerate() {
        let plan = FaultPlan::gaps(1000 + i as u64, fraction);
        let result = run_campaign_faulted(&small_config(), Some(&plan));
        for policy in [MissingPolicy::Locf, MissingPolicy::MeanImpute, MissingPolicy::DropRows] {
            let analysis = analyze_deviation_with_policy(&result.datasets[0], &params, policy);
            assert_eq!(analysis.rfe.relevance.len(), 13);
            assert!((analysis.rfe.relevance.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(
                analysis.rfe.mean_mape().is_finite(),
                "{policy:?} at {fraction}: non-finite MAPE"
            );
        }
    }
}

#[test]
fn service_drains_under_saturation_with_injected_stalls() {
    // A real fitted model, like an offline campaign would export.
    let mut x = Matrix::zeros(0, 4);
    let mut y = Vec::new();
    for i in 0..20 {
        let row: Vec<f64> = (0..4).map(|j| ((i * 5 + j * 3) % 9) as f64).collect();
        y.push(row[0] - 0.5 * row[2] + 0.1 * row[3]);
        x.push_row(&row);
    }
    let gbr = Gbr::fit(&x, &y, &GbrParams { n_trees: 6, subsample: 1.0, ..GbrParams::default() });
    let names = (0..4).map(|i| format!("f{i}")).collect();
    let artifact = ModelArtifact::deviation(
        "amg-16",
        1,
        dragonfly_variability::counters::FeatureSet::App,
        names,
        gbr,
    );

    let registry = Arc::new(ModelRegistry::new());
    registry.install(artifact).unwrap();
    // Tiny queue + a batcher that stalls every third tick: clients see
    // backpressure, but every accepted request is eventually answered.
    let service = Service::start(
        registry,
        ServeConfig {
            queue_capacity: 4,
            max_batch: 2,
            fault_plan: Some(FaultPlan {
                batcher_stall: Schedule::Periodic { period: 3, phase: 0 },
                stall_millis: 5,
                ..FaultPlan::none()
            }),
            ..ServeConfig::default()
        },
    );
    let workers: Vec<_> = (0..4u64)
        .map(|t| {
            let handle = service.handle();
            std::thread::spawn(move || {
                for i in 0..25u64 {
                    let row: Vec<f64> = (0..4u64).map(|j| ((t + i * 3 + j) % 11) as f64).collect();
                    loop {
                        match handle.request(Request::PredictDeviation {
                            app: "amg-16".into(),
                            step_features: row.clone(),
                        }) {
                            Response::Prediction { value, .. } => {
                                assert!(value.is_finite());
                                break;
                            }
                            Response::Rejected { retry_after } => std::thread::sleep(retry_after),
                            Response::Error(e) => panic!("serve error: {e}"),
                        }
                    }
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().unwrap();
    }
    let stats = service.shutdown();
    assert_eq!(stats.completed, 100);
    assert_eq!(stats.errors, 0);
}

#[test]
fn online_loop_survives_periodic_artifact_corruption() {
    // A campaign whose workload shifts mid-way, so the drift detector
    // actually fires and the loop attempts promotions — and a fault plan
    // that corrupts every other exported artifact per model key.
    let mut config = CampaignConfig::quick();
    config.num_days = 8;
    config.workload_shift =
        Some(WorkloadShift { at_day: 4, intensity_factor: 3.0, heavier_benign: true });
    let result = run_campaign(&config);
    let online = OnlineConfig::quick();
    let plan = FaultPlan {
        artifact_corrupt: Schedule::Periodic { period: 2, phase: 0 },
        ..FaultPlan::none()
    };

    let obs = Obs::enabled();
    let outcome = run_online_faulted_observed(&result, &config, &online, &plan, &obs);
    let report = &outcome.report;

    // The faulted loop is exactly as deterministic as the clean one.
    let again = run_online_faulted_observed(&result, &config, &online, &plan, &Obs::disabled());
    assert_eq!(report, &again.report, "faulted online loop must be deterministic");

    // Phase 0 corrupts each key's first retrain export, so the shift must
    // have produced at least one refused promotion...
    let rejected =
        report.promotions.iter().filter(|p| p.outcome == PromotionOutcome::RejectedCorrupt).count();
    assert!(rejected > 0, "the corruption plan never fired: {:?}", report.promotions);
    // ...and the off-cycles let retrains through eventually.
    let installed = report
        .promotions
        .iter()
        .filter(|p| matches!(p.outcome, PromotionOutcome::Installed { .. }))
        .count();
    assert!(installed > 0, "every promotion was refused: {:?}", report.promotions);

    // A refused export must leave the previous model serving: versions are
    // per-app monotone, never drop to zero, and a RejectedCorrupt day keeps
    // the version of the day before.
    let mut last_version: HashMap<&str, u64> = HashMap::new();
    for row in &report.days {
        assert!(row.live_version >= 1, "day {} {} lost its model", row.day, row.app);
        if let Some(prev) = last_version.get(row.app.as_str()) {
            assert!(row.live_version >= *prev, "version rolled back for {}", row.app);
            if row.outcome == Some(PromotionOutcome::RejectedCorrupt) {
                assert_eq!(
                    row.live_version, *prev,
                    "a refused promotion must not change {}'s live model",
                    row.app
                );
            }
        }
        // Predictions stayed available all along: every day with holdout
        // rows scored against a live model.
        if row.rows > 0 {
            assert!(row.online_mape.is_some(), "day {} {} had no serving model", row.day, row.app);
        }
        last_version.insert(row.app.as_str(), row.live_version);
    }

    // Whatever the fault plan did, nothing invalid ever went live.
    for (key, version) in outcome.registry.models() {
        assert!(version >= 1);
        let artifact = outcome.registry.get(&key).expect("listed model is servable");
        assert!(artifact.validate().is_ok(), "{key} serves an invalid artifact");
        assert_eq!(artifact.version, version);
    }

    // The refusals are visible in telemetry, and every registry swap was a
    // real install.
    let snapshot = obs.snapshot();
    assert_eq!(
        snapshot.counter("online.promote.rejected{reason=\"corrupt\"}"),
        Some(rejected as u64)
    );
    assert_eq!(snapshot.counter("online.promote.installed"), Some(installed as u64));
}

/// The "Cori week" stress configuration: the full-size machine, 20 Table I
/// rows, and enough probe density that one simulated week produces more
/// than 1200 probe runs. Exercises the incremental measurement engine —
/// route cache, sparse background splices, session reuse — at cluster
/// scale. Ignored in the default tier; CI's `--include-ignored` pass and
/// the chaos job run it.
#[test]
#[ignore = "cluster-scale stress run (release-mode minutes)"]
fn cori_week_campaign_completes_at_cluster_scale() {
    let config = CampaignConfig::cori_week();
    let result = run_campaign(&config);
    assert!(
        result.probe_jobs.len() > 1200,
        "only {} probe runs; the stress config lost its scale",
        result.probe_jobs.len()
    );
    let runs: usize = result.datasets.iter().map(|d| d.runs.len()).sum();
    assert_eq!(runs, result.probe_jobs.len(), "every scheduled probe must be measured");
    for d in &result.datasets {
        for run in &d.runs {
            assert!(!run.steps.is_empty());
            assert!(run.steps.iter().all(|s| s.time.is_finite() && s.time > 0.0));
        }
    }
}

/// A deviation artifact whose predictions scale with `scale`, so distinct
/// versions are distinguishable by VALUE, not just by version number.
fn scaled_artifact(app: &str, version: u64, scale: f64) -> ModelArtifact {
    let mut x = Matrix::zeros(0, 4);
    let mut y = Vec::new();
    for i in 0..20 {
        let row: Vec<f64> = (0..4).map(|j| ((i * 5 + j * 3) % 9) as f64).collect();
        y.push(scale * (row[0] - 0.5 * row[2] + 0.1 * row[3]));
        x.push_row(&row);
    }
    let gbr = Gbr::fit(&x, &y, &GbrParams { n_trees: 6, subsample: 1.0, ..GbrParams::default() });
    let names = (0..4).map(|i| format!("f{i}")).collect();
    ModelArtifact::deviation(
        app,
        version,
        dragonfly_variability::counters::FeatureSet::App,
        names,
        gbr,
    )
}

#[test]
fn sharded_fleet_survives_concurrent_hot_swaps_with_consistent_epochs() {
    // K clients hammer a 3-shard fleet while the registry hot-swaps the
    // model repeatedly. Invariants: every accepted request is answered
    // from SOME installed version; each client's fixed request row maps to
    // one shard, whose adopted version never moves backwards; and once the
    // swaps settle, every shard serves the final version.
    let registry = Arc::new(ModelRegistry::new());
    registry.install(scaled_artifact("amg-16", 1, 1.0)).unwrap();
    let fleet = Fleet::start(
        registry.clone(),
        FleetConfig {
            shards: 3,
            shard_config: ServeConfig {
                queue_capacity: 32,
                max_batch: 4,
                ..ServeConfig::default()
            },
            spill: false, // keep row→shard affinity strict so monotonicity is per-shard
        },
    );
    let clients: Vec<_> = (0..6u64)
        .map(|t| {
            let handle = fleet.handle();
            std::thread::spawn(move || {
                // One fixed row per client: hash-affinity pins it to one
                // shard, so the version sequence this client observes is
                // that shard's adoption order.
                let row: Vec<f64> = (0..4u64).map(|j| ((t * 7 + j * 3) % 9) as f64).collect();
                let mut last_version = 0u64;
                for _ in 0..120 {
                    loop {
                        match handle.request(Request::PredictDeviation {
                            app: "amg-16".into(),
                            step_features: row.clone(),
                        }) {
                            Response::Prediction { value, model_version, .. } => {
                                assert!(value.is_finite());
                                assert!(
                                    (1..=6u64).contains(&model_version),
                                    "version {model_version} was never installed"
                                );
                                assert!(
                                    model_version >= last_version,
                                    "shard went backwards: {last_version} -> {model_version}"
                                );
                                last_version = model_version;
                                break;
                            }
                            Response::Rejected { retry_after } => std::thread::sleep(retry_after),
                            Response::Error(e) => panic!("serve error: {e}"),
                        }
                    }
                }
            })
        })
        .collect();
    for version in 2..=6u64 {
        registry.install(scaled_artifact("amg-16", version, version as f64)).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(3));
    }
    for client in clients {
        client.join().unwrap();
    }
    // The fleet settles: probing each shard DIRECTLY (bypassing routing)
    // must find every one of them on the final version.
    let handle = fleet.handle();
    let probe: Vec<f64> = vec![1.0, 2.0, 3.0, 4.0];
    for shard in 0..handle.shards() {
        match handle.shard(shard).request(Request::PredictDeviation {
            app: "amg-16".into(),
            step_features: probe.clone(),
        }) {
            Response::Prediction { model_version, .. } => {
                assert_eq!(model_version, 6, "shard {shard} lags after settle");
            }
            other => panic!("shard {shard}: unexpected response {other:?}"),
        }
    }
    let stats = fleet.shutdown();
    assert_eq!(stats.errors(), 0);
    assert_eq!(stats.completed(), 6 * 120 + 3);
}

#[test]
fn traced_hot_swap_chaos_proves_causal_consistency() {
    // The 3-shard hot-swap scenario again, but with the flight recorder
    // running and every client request carrying its own trace id. The
    // reconstruction proves the two causal invariants from the event log
    // alone: (1) no client ever observes a model-version regression, and
    // (2) every served version was announced by an earlier
    // `registry.install` — a reply can never get ahead of the registry.
    let obs = Obs::enabled_traced(8192);
    let registry = Arc::new(ModelRegistry::new_observed(&obs));
    registry.install(scaled_artifact("amg-16", 1, 1.0)).unwrap();
    let fleet = Fleet::start_observed(
        registry.clone(),
        FleetConfig {
            shards: 3,
            shard_config: ServeConfig {
                queue_capacity: 32,
                max_batch: 4,
                ..ServeConfig::default()
            },
            spill: false, // strict row→shard affinity keeps monotonicity per-shard
        },
        obs.clone(),
    );
    let clients: Vec<_> = (0..6u64)
        .map(|t| {
            let handle = fleet.handle();
            std::thread::spawn(move || {
                // One trace id per client: the per-trace event sequence IS
                // that client's observation order (one outstanding request
                // at a time, replies recorded before they are delivered).
                let ctx = TraceCtx::new(trace_id(0xC1A0_5CE4E, t));
                let row: Vec<f64> = (0..4u64).map(|j| ((t * 7 + j * 3) % 9) as f64).collect();
                for _ in 0..80 {
                    loop {
                        match handle.request_traced(
                            Request::PredictDeviation {
                                app: "amg-16".into(),
                                step_features: row.clone(),
                            },
                            ctx,
                        ) {
                            Response::Prediction { value, .. } => {
                                assert!(value.is_finite());
                                break;
                            }
                            Response::Rejected { retry_after } => std::thread::sleep(retry_after),
                            Response::Error(e) => panic!("serve error: {e}"),
                        }
                    }
                }
            })
        })
        .collect();
    for version in 2..=6u64 {
        registry.install(scaled_artifact("amg-16", version, version as f64)).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(3));
    }
    for client in clients {
        client.join().unwrap();
    }
    fleet.shutdown();

    let tracer = obs.tracer();
    let query = TraceQuery::new(tracer.events());
    // The pipeline actually traced: dispatches, replies, epoch adoptions
    // and all six installs are in the recorder.
    assert_eq!(query.of_kind("serve.reply").len(), 6 * 80);
    assert_eq!(query.of_kind("registry.install").len(), 6);
    assert!(!query.of_kind("serve.dispatch").is_empty());
    assert!(!query.of_kind("serve.epoch").is_empty());
    assert_eq!(query.traces_of("serve.reply").len(), 6, "one trace per client");

    // Invariant 1: per client, served versions never move backwards.
    if let Err(err) = query.monotone("serve.reply", "version") {
        eprintln!("--- flight recorder tail ---\n{}", tracer.dump_tail(48));
        panic!("client observed a version regression: {err}");
    }
    // Invariant 2: every served version is reachable from a strictly
    // earlier promotion/install event.
    if let Err(err) =
        query.causally_preceded("serve.reply", "version", "registry.install", "version")
    {
        eprintln!("--- flight recorder tail ---\n{}", tracer.dump_tail(48));
        panic!("a reply served a version the registry never announced: {err}");
    }
    // Same discipline for the shards' own epoch adoptions: each shard's
    // adoption sequence (one batcher thread, so seq order is emission
    // order) never moves backwards.
    let mut last_epoch: HashMap<u64, u64> = HashMap::new();
    for event in query.of_kind("serve.epoch") {
        let shard = event.u64_attr("shard").expect("serve.epoch carries a shard");
        let epoch = event.u64_attr("epoch").expect("serve.epoch carries an epoch");
        let prev = last_epoch.entry(shard).or_insert(0);
        if epoch < *prev {
            eprintln!("--- flight recorder tail ---\n{}", tracer.dump_tail(48));
            panic!("shard {shard} adopted epoch {epoch} after {prev}");
        }
        *prev = epoch;
    }
}

#[test]
fn corrupt_installs_leave_every_shard_on_the_previous_version() {
    // Installs ride a deterministic corruption schedule (the chaos layer's
    // ArtifactCorrupt site): corrupted artifacts fail validation, the
    // registry refuses them WITHOUT bumping the epoch, and every shard —
    // probed directly — keeps serving the last good version.
    let plan = FaultPlan {
        artifact_corrupt: Schedule::Periodic { period: 2, phase: 1 },
        ..FaultPlan::none()
    };
    let registry = Arc::new(ModelRegistry::new());
    registry.install(scaled_artifact("milc-16", 1, 1.0)).unwrap();
    let fleet = Fleet::start(registry.clone(), FleetConfig { shards: 2, ..FleetConfig::default() });
    let handle = fleet.handle();
    let probe: Vec<f64> = vec![0.5, 1.5, 2.5, 3.5];
    let shard_versions = |handle: &FleetHandle| -> Vec<u64> {
        (0..handle.shards())
            .map(|shard| {
                match handle.shard(shard).request(Request::PredictDeviation {
                    app: "milc-16".into(),
                    step_features: probe.clone(),
                }) {
                    Response::Prediction { model_version, .. } => model_version,
                    other => panic!("shard {shard}: unexpected response {other:?}"),
                }
            })
            .collect()
    };
    assert_eq!(shard_versions(&handle), vec![1, 1]);

    let mut live_version = 1u64;
    let mut refused = 0u64;
    for (index, version) in (2..=9u64).enumerate() {
        let mut artifact = scaled_artifact("milc-16", version, version as f64);
        let epoch_before = registry.epoch();
        if plan.fires(FaultSite::ArtifactCorrupt, 0, index as u64) {
            // Corruption: the artifact loses its feature schema, which
            // validation catches at install time.
            artifact.feature_names.clear();
            assert!(registry.install(artifact).is_err(), "corrupt v{version} accepted");
            assert_eq!(registry.epoch(), epoch_before, "refused install bumped the epoch");
            refused += 1;
        } else {
            registry.install(artifact).unwrap();
            live_version = version;
        }
        // Whatever just happened, both shards agree on the live version.
        assert_eq!(shard_versions(&handle), vec![live_version; 2]);
    }
    assert!(refused >= 3, "the corruption schedule should have fired: {refused}");
    assert_eq!(live_version, registry.get(&ModelKey::deviation("milc-16")).unwrap().version);
    fleet.shutdown();
}
