//! Property-based tests on the core substrate invariants, across randomized
//! topologies, traffic and datasets.

use dragonfly_variability::dragonfly::ids::Idx;
use dragonfly_variability::dragonfly::routing::{
    self, minimal_route, route_is_valid, IntraOrder, RoutingPolicy,
};
use dragonfly_variability::mlkit::dataset::{
    impute_series, kfold, series_has_missing, Standardizer,
};
use dragonfly_variability::mlkit::matrix::{softmax, Matrix};
use dragonfly_variability::mlkit::metrics::{mae, mape, r2, rmse};
use dragonfly_variability::mlkit::mi::{binary_entropy, mutual_information_binary};
use dragonfly_variability::prelude::*;
use proptest::prelude::*;

/// A randomized (but always valid) dragonfly configuration.
fn arb_config() -> impl Strategy<Value = DragonflyConfig> {
    (2usize..=6, 2usize..=6, 2usize..=4, 1usize..=4).prop_map(|(groups, row, rows, npr)| {
        DragonflyConfig {
            num_groups: groups,
            routers_per_row: row,
            rows,
            nodes_per_router: npr,
            global_ports_per_router: 2,
            ..DragonflyConfig::cori()
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn minimal_routes_are_valid_on_any_topology(cfg in arb_config(), pairs in proptest::collection::vec((0usize..4096, 0usize..4096), 1..20)) {
        let topo = Topology::new(cfg).unwrap();
        for (a, b) in pairs {
            let src = RouterId::from_index(a % topo.num_routers());
            let dst = RouterId::from_index(b % topo.num_routers());
            let route = minimal_route(&topo, src, dst, IntraOrder::GreenFirst, 0);
            prop_assert!(route_is_valid(&topo, &route, src, dst));
            prop_assert!(route.len() <= 5, "minimal routes stay within the dragonfly diameter");
        }
    }

    #[test]
    fn adaptive_routes_are_valid_under_random_load(cfg in arb_config(), seed in 0u64..1000) {
        let topo = Topology::new(cfg).unwrap();
        let mut loads = ChannelLoads::new(&topo);
        // Random pre-existing load.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let c = dragonfly_variability::dragonfly::ChannelId(
                rng.gen_range(0..topo.num_channels()) as u32,
            );
            loads.add(c, rng.gen_range(0.0..1e10));
        }
        for _ in 0..20 {
            let src = RouterId::from_index(rng.gen_range(0..topo.num_routers()));
            let dst = RouterId::from_index(rng.gen_range(0..topo.num_routers()));
            let route = routing::route_flow(
                &topo, src, dst, 1e6, RoutingPolicy::default(), &loads, &mut rng,
            );
            prop_assert!(route_is_valid(&topo, &route, src, dst));
        }
    }

    #[test]
    fn step_simulation_is_finite_and_monotone_in_volume(
        cfg in arb_config(),
        bytes in 1.0e3..1.0e9f64,
        msgs in 1.0..1.0e5f64,
        seed in 0u64..100,
    ) {
        let topo = Topology::new(cfg).unwrap();
        let sim = NetworkSim::new(&topo);
        let bg = BackgroundTraffic::zero(&topo);
        let mut scratch = SimScratch::new(&topo);
        let n = topo.num_nodes() as u32;
        let mut small = Traffic::new();
        small.push(NodeId(0), NodeId(n - 1), bytes, msgs);
        let mut big = Traffic::new();
        big.push(NodeId(0), NodeId(n - 1), bytes * 16.0, msgs * 16.0);
        let t_small = sim.simulate_step(&small, &bg, seed, &mut scratch).comm_time;
        let t_big = sim.simulate_step(&big, &bg, seed, &mut scratch).comm_time;
        prop_assert!(t_small.is_finite() && t_small > 0.0);
        prop_assert!(t_big >= t_small, "16x the traffic cannot be faster: {t_big} < {t_small}");
    }

    #[test]
    fn telemetry_is_nonnegative_and_scales_with_window(
        cfg in arb_config(),
        rate in 1.0e6..5.0e9f64,
    ) {
        let topo = Topology::new(cfg).unwrap();
        let sim = NetworkSim::new(&topo);
        let scratch = SimScratch::new(&topo);
        let mut bg = BackgroundTraffic::zero(&topo);
        bg.channel_bytes.add(dragonfly_variability::dragonfly::ChannelId(0), rate);
        let mut t1 = StepTelemetry::new(topo.num_routers());
        let mut t2 = StepTelemetry::new(topo.num_routers());
        sim.fill_telemetry(&scratch, &bg, 1.0, &mut t1);
        sim.fill_telemetry(&scratch, &bg, 2.0, &mut t2);
        let (a, b) = (t1.total(), t2.total());
        prop_assert!(a.is_sane() && b.is_sane());
        // Flits double with the window; stalls grow at most linearly in
        // volume (utilization is unchanged when rates are constant).
        prop_assert!((b.rt_flit_tot - 2.0 * a.rt_flit_tot).abs() <= 1e-6 * b.rt_flit_tot.max(1.0));
    }

    #[test]
    fn placement_features_bounded_by_nodes(cfg in arb_config(), picks in proptest::collection::vec(0usize..10_000, 1..40)) {
        let topo = Topology::new(cfg).unwrap();
        let nodes: Vec<NodeId> = picks
            .into_iter()
            .map(|p| NodeId((p % topo.num_nodes()) as u32))
            .collect();
        let placement = Placement::new(nodes);
        let r = placement.num_routers(&topo);
        let g = placement.num_groups(&topo);
        prop_assert!(r >= 1 && r <= placement.len());
        prop_assert!(g >= 1 && g <= r);
        prop_assert!(g <= topo.num_groups());
    }

    #[test]
    fn standardizer_is_idempotent_on_its_output(rows in 2usize..30, cols in 1usize..8, seed in 0u64..100) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut x = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                x.set(r, c, rng.gen_range(-100.0..100.0));
            }
        }
        let s = Standardizer::fit(&x);
        let mut y = x.clone();
        s.transform(&mut y);
        let s2 = Standardizer::fit(&y);
        for c in 0..cols {
            prop_assert!(s2.means[c].abs() < 1e-9);
            prop_assert!((s2.stds[c] - 1.0).abs() < 1e-6 || s2.stds[c] == 1.0);
        }
    }

    #[test]
    fn metrics_agree_on_perfect_predictions(values in proptest::collection::vec(0.1f64..1e6, 1..50)) {
        prop_assert!(mape(&values, &values).abs() < 1e-12);
        prop_assert!(rmse(&values, &values).abs() < 1e-12);
        prop_assert!(mae(&values, &values).abs() < 1e-12);
        if values.len() > 1 && values.iter().any(|&v| (v - values[0]).abs() > 1e-9) {
            prop_assert!((r2(&values, &values) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mutual_information_bounded_by_entropy(xs in proptest::collection::vec(any::<bool>(), 4..200), seed in 0u64..50) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ys: Vec<bool> = xs.iter().map(|&x| if rng.gen_bool(0.7) { x } else { rng.gen() }).collect();
        let mi = mutual_information_binary(&xs, &ys);
        prop_assert!(mi >= 0.0);
        prop_assert!(mi <= binary_entropy(&xs) + 1e-9);
        prop_assert!(mi <= binary_entropy(&ys) + 1e-9);
    }

    #[test]
    fn kfold_always_partitions(n in 4usize..200, k in 2usize..8, seed in 0u64..100) {
        prop_assume!(n >= k);
        let folds = kfold(n, k, seed);
        let mut seen: Vec<usize> = folds.iter().flat_map(|(_, t)| t.clone()).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn softmax_is_a_distribution(xs in proptest::collection::vec(-50.0f64..50.0, 1..30)) {
        let s = softmax(&xs);
        prop_assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(s.iter().all(|&v| v >= 0.0 && v.is_finite()));
    }

    #[test]
    fn imputation_fills_every_gap_and_is_idempotent(
        t in 1usize..24,
        h in 1usize..6,
        seed in 0u64..200,
        p in 0.0f64..0.9,
        mean in any::<bool>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut steps: Vec<Vec<f64>> = (0..t)
            .map(|_| {
                (0..h)
                    .map(|_| if rng.gen_bool(p) { f64::NAN } else { rng.gen_range(-50.0..50.0) })
                    .collect()
            })
            .collect();
        let policy = if mean { MissingPolicy::MeanImpute } else { MissingPolicy::Locf };
        impute_series(&mut steps, policy);
        prop_assert!(!series_has_missing(&steps));
        prop_assert!(steps.iter().flatten().all(|v| v.is_finite()));
        // Idempotent: a resolved series is dense, and dense series are untouched.
        let once = steps.clone();
        impute_series(&mut steps, policy);
        prop_assert_eq!(&steps, &once);
    }

    #[test]
    fn dense_series_are_bit_for_bit_untouched_by_every_policy(
        t in 1usize..24,
        h in 1usize..6,
        seed in 0u64..200,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let steps: Vec<Vec<f64>> = (0..t)
            .map(|_| (0..h).map(|_| rng.gen_range(-1.0e9..1.0e9)).collect())
            .collect();
        for policy in [MissingPolicy::Locf, MissingPolicy::MeanImpute, MissingPolicy::DropRows] {
            let mut copy = steps.clone();
            impute_series(&mut copy, policy);
            let same = copy
                .iter()
                .flatten()
                .zip(steps.iter().flatten())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            prop_assert!(same, "{policy:?} rewrote a dense series");
        }
    }

    #[test]
    fn fault_masks_are_seeded_functions_not_processes(
        seed in 0u64..5000,
        p in 0.0f64..1.0,
        stream in 0u64..64,
        len in 1usize..256,
    ) {
        let plan = FaultPlan::gaps(seed, p);
        let a = plan.mask(FaultSite::CounterDropout, stream, len);
        let b = plan.clone().mask(FaultSite::CounterDropout, stream, len);
        prop_assert_eq!(&a, &b);
        // Prefix stability: drawing more of the stream never rewrites history.
        let longer = plan.mask(FaultSite::CounterDropout, stream, len + 17);
        prop_assert_eq!(&longer[..len], &a[..]);
        // The empty plan never fires anywhere.
        let silent = FaultPlan::none().mask(FaultSite::CounterDropout, stream, len);
        prop_assert!(silent.iter().all(|&fired| !fired));
    }

    #[test]
    fn traffic_coalesce_preserves_totals(flows in proptest::collection::vec((0u32..50, 0u32..50, 1.0f64..1e6, 1.0f64..1e3), 1..60)) {
        let mut t = Traffic::new();
        for (a, b, bytes, msgs) in flows {
            t.push(NodeId(a), NodeId(b), bytes, msgs);
        }
        let bytes_before = t.total_bytes();
        let msgs_before = t.total_messages();
        t.coalesce();
        prop_assert!((t.total_bytes() - bytes_before).abs() < 1e-6 * bytes_before.max(1.0));
        prop_assert!((t.total_messages() - msgs_before).abs() < 1e-6 * msgs_before.max(1.0));
        // No duplicate endpoints remain.
        let mut pairs: Vec<_> = t.flows.iter().map(|f| (f.src, f.dst)).collect();
        let len = pairs.len();
        pairs.sort_unstable();
        pairs.dedup();
        prop_assert_eq!(pairs.len(), len);
    }
}
