//! Failure-injection and edge-case robustness: the pipeline must degrade
//! gracefully, not panic, when given degenerate configurations.

use dragonfly_variability::prelude::*;

#[test]
fn oversized_probes_yield_empty_datasets_without_panicking() {
    // Probe jobs larger than the machine can never run; the campaign must
    // still complete and return an (empty) dataset.
    let mut config = CampaignConfig::quick();
    config.num_days = 2;
    config.apps = vec![AppSpec { kind: AppKind::MiniVite, num_nodes: 100_000 }];
    let result = run_campaign(&config);
    assert_eq!(result.datasets.len(), 1);
    assert!(result.datasets[0].runs.is_empty());
}

#[test]
fn campaign_without_background_users_still_runs() {
    let mut config = CampaignConfig::quick();
    config.num_days = 2;
    config.heavy_users = 0;
    config.benign_users = 0;
    let result = run_campaign(&config);
    for ds in &result.datasets {
        assert!(!ds.runs.is_empty(), "{} should still run", ds.spec.label());
        // With nothing else on the machine, variability shrinks to the
        // compute noise + placement differences.
        assert!(ds.variability_ratio() < 1.6, "idle machine: {}", ds.variability_ratio());
    }
}

#[test]
fn single_group_machine_works_end_to_end() {
    let mut config = CampaignConfig::quick();
    config.num_days = 2;
    config.topology.num_groups = 1;
    config.topology.global_ports_per_router = 0;
    config.apps = vec![AppSpec { kind: AppKind::Milc, num_nodes: 8 }];
    config.heavy_users = 1;
    config.benign_users = 1;
    let result = run_campaign(&config);
    assert!(!result.datasets[0].runs.is_empty());
    for run in &result.datasets[0].runs {
        assert_eq!(run.num_groups, 1);
        assert!(run.total_time().is_finite());
    }
}

#[test]
fn zero_intensity_background_is_effectively_idle() {
    let mut config = CampaignConfig::quick();
    config.num_days = 2;
    config.background_intensity = 0.0;
    let result = run_campaign(&config);
    for ds in &result.datasets {
        // The machine is busy with jobs whose traffic is zeroed: what's left
        // is placement differences plus probe-probe self-interference (the
        // paper's User-8 effect), far below the full-campaign spread.
        assert!(!ds.runs.is_empty());
        assert!(ds.variability_ratio() < 2.5, "{}", ds.variability_ratio());
    }
}

#[test]
fn saturated_machine_never_produces_nonfinite_times() {
    // Crank the background to absurd intensity: everything slows down but
    // the floors keep every time finite and positive.
    let mut config = CampaignConfig::quick();
    config.num_days = 2;
    config.background_intensity = 100.0;
    let result = run_campaign(&config);
    for ds in &result.datasets {
        for run in &ds.runs {
            for s in &run.steps {
                assert!(s.time.is_finite() && s.time > 0.0);
                assert!(s.counters.iter().all(|c| c.is_finite()));
            }
        }
    }
}

#[test]
fn tiny_campaign_supports_every_analysis_without_panic() {
    use dragonfly_variability::experiments::deviation::analyze_deviation;
    use dragonfly_variability::experiments::neighborhood::{analyze, NeighborhoodParams};
    use dragonfly_variability::mlkit::gbr::GbrParams;
    use dragonfly_variability::mlkit::rfe::RfeParams;

    let mut config = CampaignConfig::quick();
    config.num_days = 2;
    config.apps = vec![AppSpec { kind: AppKind::Umt, num_nodes: 8 }];
    let result = run_campaign(&config);

    let nb = NeighborhoodParams { min_job_nodes: 4, tau: 1.0, top_k: 3, min_cooccurrence: 1 };
    let analysis = analyze(&result, &nb);
    assert_eq!(analysis.per_dataset.len(), 1);

    let rfe = RfeParams { folds: 2, gbr: GbrParams { n_trees: 5, ..Default::default() }, seed: 0 };
    let dev = analyze_deviation(&result.datasets[0], &rfe);
    assert_eq!(dev.rfe.relevance.len(), 13);
}
