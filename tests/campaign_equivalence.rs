//! Exact-bits pins for the campaign's incremental fast path.
//!
//! Two guarantees, enforced end to end through the public API:
//!
//! 1. The optimized `run_campaign` is bit-for-bit the sequential
//!    pre-optimization implementation (`run_campaign_naive`, exposed via
//!    the `naive` feature), clean and under an active fault plan.
//! 2. The `quick()` campaign digest equals the constant captured on the
//!    sequential implementation *before* the fast path landed. If this pin
//!    moves, the rewrite changed simulated physics, not just speed.

use dfv_experiments::campaign::{
    campaign_digest, run_campaign, run_campaign_faulted, run_campaign_naive, CampaignConfig,
};
use dfv_faults::FaultPlan;

/// `campaign_digest(run_campaign(&CampaignConfig::quick()))` captured on the
/// dense sequential engine at the commit preceding the fast path.
const QUICK_DIGEST_PRE_FAST_PATH: u64 = 0xe8dccbf580406247;

#[test]
fn quick_campaign_digest_is_pinned_to_the_sequential_era() {
    let result = run_campaign(&CampaignConfig::quick());
    assert_eq!(
        campaign_digest(&result),
        QUICK_DIGEST_PRE_FAST_PATH,
        "fast-path campaign diverged from the pinned pre-optimization digest"
    );
}

#[test]
fn fast_and_naive_campaigns_are_bit_identical() {
    let config = CampaignConfig::quick();
    let fast = run_campaign(&config);
    let naive = run_campaign_naive(&config, None);
    assert_eq!(fast.sacct, naive.sacct);
    assert_eq!(fast.probe_jobs, naive.probe_jobs);
    assert_eq!(campaign_digest(&fast), campaign_digest(&naive));
}

#[test]
fn fast_and_naive_campaigns_agree_under_faults() {
    let mut config = CampaignConfig::quick();
    config.num_days = 3;
    let plan = FaultPlan::gaps(41, 0.3);
    let fast = run_campaign_faulted(&config, Some(&plan));
    let naive = run_campaign_naive(&config, Some(&plan));
    // The digest folds in raw bit patterns, so NaN gaps must line up too.
    assert_eq!(campaign_digest(&fast), campaign_digest(&naive));
}
