//! Determinism guarantees: for a fixed seed, every layer — topology,
//! routing, scheduling, campaign, analyses — must reproduce bit-for-bit
//! regardless of thread scheduling.

use dragonfly_variability::experiments::deviation::analyze_deviation;
use dragonfly_variability::experiments::forecast::{evaluate, ForecastSpec};
use dragonfly_variability::experiments::neighborhood::{analyze, NeighborhoodParams};
use dragonfly_variability::mlkit::gbr::GbrParams;
use dragonfly_variability::mlkit::rfe::RfeParams;
use dragonfly_variability::prelude::*;

fn small_campaign(seed: u64) -> CampaignResult {
    let mut config = CampaignConfig::quick();
    config.num_days = 3;
    config.seed = seed;
    run_campaign(&config)
}

#[test]
fn campaigns_reproduce_bit_for_bit() {
    let a = small_campaign(11);
    let b = small_campaign(11);
    assert_eq!(a.sacct.len(), b.sacct.len());
    for (ra, rb) in a.sacct.iter().zip(&b.sacct) {
        assert_eq!(ra, rb);
    }
    for (da, db) in a.datasets.iter().zip(&b.datasets) {
        assert_eq!(da.runs.len(), db.runs.len());
        for (x, y) in da.runs.iter().zip(&db.runs) {
            assert_eq!(x, y);
        }
    }
}

#[test]
fn different_seeds_differ() {
    let a = small_campaign(11);
    let b = small_campaign(12);
    let ta: f64 = a.datasets[0].total_times().iter().sum();
    let tb: f64 = b.datasets[0].total_times().iter().sum();
    assert_ne!(ta, tb, "different seeds should give different campaigns");
}

#[test]
fn analyses_are_deterministic_given_a_campaign() {
    let result = small_campaign(21);
    let nb_params =
        NeighborhoodParams { min_job_nodes: 8, tau: 1.0, top_k: 4, min_cooccurrence: 2 };
    assert_eq!(analyze(&result, &nb_params), analyze(&result, &nb_params));

    let ds = &result.datasets[1];
    let rfe_params =
        RfeParams { folds: 3, gbr: GbrParams { n_trees: 15, ..Default::default() }, seed: 2 };
    let d1 = analyze_deviation(ds, &rfe_params);
    let d2 = analyze_deviation(ds, &rfe_params);
    assert_eq!(d1.rfe.relevance, d2.rfe.relevance);
    assert_eq!(d1.rfe.fold_mape, d2.rfe.fold_mape);

    let milc = result.datasets.iter().find(|d| d.spec.kind == AppKind::Milc).unwrap();
    let fspec = ForecastSpec { m: 5, k: 10, features: FeatureSet::AppPlacement };
    let params = AttentionParams { epochs: 8, d_attn: 4, hidden: 8, ..Default::default() };
    let f1 = evaluate(milc, &fspec, &params, 2, 3);
    let f2 = evaluate(milc, &fspec, &params, 2, 3);
    assert_eq!(f1.fold_mapes, f2.fold_mapes);
}
