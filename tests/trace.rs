//! End-to-end tracing: zero perturbation, exporter validity, the online
//! model-lineage chain, and SLO burn-rate alerts under overload — all
//! through the public facade.
//!
//! The tentpole contract under test: with the flight recorder on, every
//! pipeline still produces bit-identical results (the campaign digest
//! stays on its pre-fast-path pin; served predictions match untraced
//! runs), while the recorder captures enough causal structure to
//! reconstruct what happened — drift fired, a retrain ran, validation
//! gated it, the promotion installed, shards adopted — in one shared
//! sequence order.

use dragonfly_variability::experiments::campaign::campaign_digest;
use dragonfly_variability::experiments::WorkloadShift;
use dragonfly_variability::mlkit::gbr::{Gbr, GbrParams};
use dragonfly_variability::prelude::*;
use std::sync::Arc;

/// The pre-fast-path quick-campaign digest (see campaign_equivalence.rs).
const QUICK_DIGEST_PRE_FAST_PATH: u64 = 0xe8dccbf580406247;

#[test]
fn traced_campaign_digest_matches_the_untraced_pin() {
    // Phase, day and chunk events record the campaign's shape; none of
    // them may touch the simulated physics.
    let config = CampaignConfig::quick();
    let obs = Obs::enabled_traced(8_192);
    let traced = run_campaign_observed(&config, &obs);
    assert_eq!(
        campaign_digest(&traced),
        QUICK_DIGEST_PRE_FAST_PATH,
        "tracing moved the campaign digest"
    );

    let query = TraceQuery::new(obs.tracer().events());
    let phases = query.of_kind("campaign.phase");
    assert_eq!(phases.len(), 2, "schedule + measure phase events");
    assert_eq!(query.of_kind("campaign.day").len(), config.num_days);
    assert!(!query.of_kind("campaign.chunk").is_empty());
    // Days are emitted in order with their probe counts.
    for (i, day) in query.of_kind("campaign.day").iter().enumerate() {
        assert_eq!(day.u64_attr("day"), Some(i as u64));
        assert!(day.u64_attr("probes").unwrap() > 0);
    }
}

#[test]
fn online_lineage_chain_shares_one_trace_per_cycle() {
    // A mid-campaign workload shift makes the drift detector fire; the
    // whole retrain cycle — drift trigger, refit, validation gate,
    // promotion offer, registry install — must ride one deterministic
    // trace id, reconstructable from the event log.
    let mut config = CampaignConfig::quick();
    config.num_days = 8;
    config.workload_shift =
        Some(WorkloadShift { at_day: 4, intensity_factor: 2.5, heavier_benign: true });
    let result = run_campaign(&config);
    let online = OnlineConfig::quick();

    let obs = Obs::enabled_traced(16_384);
    let outcome = run_online_faulted_observed(&result, &config, &online, &FaultPlan::none(), &obs);
    assert!(!outcome.report.promotions.is_empty(), "the shift never triggered a retrain");

    let tracer = obs.tracer();
    let query = TraceQuery::new(tracer.events());
    let drifts = query.traces_of("online.drift");
    let retrains = query.traces_of("online.retrain");
    let validations = query.traces_of("online.validate");
    let promotes = query.traces_of("online.promote");
    assert!(!drifts.is_empty(), "no drift events recorded");
    assert!(!promotes.is_empty(), "no promotion events recorded");

    // Every promotion's lineage runs back through validation and retrain;
    // every deviation retrain runs back to a drift trigger. (Forecast
    // cycles have their own lineage ids with no drift root, so the
    // containments are one-directional.)
    for trace in &promotes {
        assert!(validations.contains(trace), "promotion {trace:#x} skipped validation");
        assert!(retrains.contains(trace), "promotion {trace:#x} has no retrain");
    }
    for trace in &drifts {
        assert!(retrains.contains(trace), "drift {trace:#x} never retrained");
    }

    // Within one lineage, the chain is causally ordered: retrain before
    // validate before promote in the shared sequence.
    for trace in &promotes {
        let seq_of = |kind: &str| {
            query
                .of_kind(kind)
                .iter()
                .filter(|e| e.trace == *trace)
                .map(|e| e.seq)
                .min()
                .unwrap_or_else(|| panic!("{kind} missing for trace {trace:#x}"))
        };
        let (retrain, validate, promote) =
            (seq_of("online.retrain"), seq_of("online.validate"), seq_of("online.promote"));
        if !(retrain < validate && validate < promote) {
            eprintln!("--- flight recorder tail ---\n{}", tracer.dump_tail(48));
            panic!("lineage {trace:#x} out of order: {retrain} {validate} {promote}");
        }
    }

    // Installed promotions are backed by registry.install events, and the
    // loop's traced rerun is bit-identical to an untraced one.
    assert!(!query.of_kind("registry.install").is_empty());
    let untraced = run_online_faulted_observed(
        &result,
        &config,
        &online,
        &FaultPlan::none(),
        &Obs::disabled(),
    );
    assert_eq!(outcome.report, untraced.report, "tracing perturbed the online loop");
}

#[test]
fn faulted_online_run_tags_fault_events_in_the_same_stream() {
    let mut config = CampaignConfig::quick();
    config.num_days = 8;
    config.workload_shift =
        Some(WorkloadShift { at_day: 4, intensity_factor: 3.0, heavier_benign: true });
    let result = run_campaign(&config);
    let plan = FaultPlan {
        artifact_corrupt: Schedule::Periodic { period: 2, phase: 0 },
        ..FaultPlan::none()
    };
    let obs = Obs::enabled_traced(16_384);
    let outcome =
        run_online_faulted_observed(&result, &config, &OnlineConfig::quick(), &plan, &obs);
    let rejected = outcome
        .report
        .promotions
        .iter()
        .filter(|p| p.outcome == PromotionOutcome::RejectedCorrupt)
        .count();
    assert!(rejected > 0, "the corruption plan never fired");

    let query = TraceQuery::new(obs.tracer().events());
    // Every corruption the plan injected is a tagged event, and each
    // rejected promotion is visible with its outcome.
    let fired = query.of_kind("fault.fired");
    assert!(
        fired.iter().any(|e| e.str_attr("site") == Some("artifact_corrupt")),
        "no artifact_corrupt fault event"
    );
    let refused = query
        .of_kind("online.promote")
        .iter()
        .filter(|e| e.str_attr("outcome") == Some("rejected_corrupt"))
        .count();
    assert_eq!(refused, rejected, "trace outcomes disagree with the report");
}

#[test]
fn slo_monitor_raises_alerts_under_queue_overload() {
    // A tiny queue and a tight reject budget: open-loop overload must
    // produce rejections, and the monitor must convert them into burn
    // alerts without touching the fleet.
    let mut x = Matrix::zeros(0, 4);
    let mut y = Vec::new();
    for i in 0..48 {
        let row: Vec<f64> = (0..4).map(|j| ((i * 5 + j * 3) % 9) as f64).collect();
        y.push(row[0] - 0.5 * row[2]);
        x.push_row(&row);
    }
    let gbr = Gbr::fit(&x, &y, &GbrParams { n_trees: 8, subsample: 1.0, ..GbrParams::default() });
    let names = (0..4).map(|i| format!("f{i}")).collect();
    let artifact = ModelArtifact::deviation(
        "amg-16",
        1,
        dragonfly_variability::counters::FeatureSet::App,
        names,
        gbr,
    );
    let obs = Obs::enabled_traced(8_192);
    let registry = Arc::new(ModelRegistry::new_observed(&obs));
    registry.install(artifact).unwrap();
    let fleet = Fleet::start_observed(
        registry,
        FleetConfig {
            shards: 1,
            shard_config: ServeConfig { queue_capacity: 4, max_batch: 2, ..ServeConfig::default() },
            ..FleetConfig::default()
        },
        obs.clone(),
    );
    let spec = LoadSpec {
        seed: 7,
        requests: 5_000,
        apps: vec!["amg-16".into()],
        pool_per_app: 64,
        width: 4,
        zipf_s: 1.1,
        mode: LoadMode::Open { rate_per_sec: 5e6 }, // far beyond a 4-deep queue
    };
    let slo = SloMonitor::new(
        SloConfig { window: 500, reject_budget: 0.001, ..SloConfig::default() },
        &obs,
    );
    let report = run_load_slo(&fleet.handle(), &spec, slo);
    fleet.shutdown();

    assert!(report.rejected > 0, "overload produced no rejections");
    assert!(!report.slo_alerts.is_empty(), "rejections never burned the budget");
    assert!(report
        .slo_alerts
        .iter()
        .any(|a| a.kind == dragonfly_variability::serve::slo::SloAlertKind::Rejects));
    // Alerts are trace events in the same stream as the serve pipeline.
    let query = TraceQuery::new(obs.tracer().events());
    assert_eq!(query.of_kind("slo.alert").len(), report.slo_alerts.len());
    assert!(!query.of_kind("serve.dispatch").is_empty());
}

#[test]
fn exporters_produce_valid_json_for_a_traced_run() {
    let obs = Obs::enabled_traced(1_024);
    let tracer = obs.tracer();
    tracer.event("demo.start").u64("step", 0).emit();
    tracer.event("demo.step").u64("step", 1).str("app", "amg-16").emit();
    tracer.event("demo.finish").u64("step", 2).f64("elapsed", 1.5).bool("ok", true).emit();
    let events = tracer.events();
    assert_eq!(events.len(), 3);

    let chrome = chrome_trace(&events);
    let jsonl = events_jsonl(&events);
    assert!(chrome.starts_with("{\"traceEvents\":["));
    assert_eq!(jsonl.lines().count(), 3);

    // Under the real serde_json, both exports parse. (The offline stub
    // cannot parse; skip the round-trip there.)
    if serde_json::from_str::<serde_json::Value>("{}").is_err() {
        return;
    }
    let parsed: serde_json::Value = serde_json::from_str(&chrome).expect("valid chrome trace");
    let list = parsed.get("traceEvents").and_then(|v| v.as_array()).expect("traceEvents array");
    assert_eq!(list.len(), 3);
    for line in jsonl.lines() {
        let event: serde_json::Value = serde_json::from_str(line).expect("valid JSONL line");
        assert!(event.get("kind").and_then(|k| k.as_str()).is_some());
        assert!(!event.get("attrs").expect("attrs object").is_null());
    }
}
