//! Load-harness determinism and fleet bit-exactness, driven through the
//! public facade.
//!
//! Invariants: the same seed reproduces the same schedule (same ranks,
//! same arrival offsets, same feature bits) without running any load; a
//! sequential single-shard run reproduces its full per-request cache
//! hit/miss sequence and summary stats; sharded fleets answer bit-for-bit
//! identically to a single shard under concurrent load; and the
//! seed-trained serving artifact's flattened kernel pins to a known
//! prediction digest, so silent numeric drift in training or compilation
//! fails loudly.

use dragonfly_variability::mlkit::gbr::{Gbr, GbrParams};
use dragonfly_variability::prelude::*;
use dragonfly_variability::serve::loadgen::{run_load, run_load_slo};
use std::sync::Arc;

/// The canonical seed-trained serving artifact: fixed data, fixed params.
fn seed_trained_artifact(app: &str, version: u64) -> ModelArtifact {
    let mut x = Matrix::zeros(0, 4);
    let mut y = Vec::new();
    for i in 0..48 {
        let row: Vec<f64> =
            (0..4).map(|j| ((i * 5 + j * 3) % 9) as f64 + 0.25 * ((i + j) % 3) as f64).collect();
        y.push(row[0] - 0.5 * row[2] + 0.1 * row[3] * row[1]);
        x.push_row(&row);
    }
    let gbr = Gbr::fit(&x, &y, &GbrParams { n_trees: 12, subsample: 1.0, ..GbrParams::default() });
    let names = (0..4).map(|i| format!("f{i}")).collect();
    ModelArtifact::deviation(
        app,
        version,
        dragonfly_variability::counters::FeatureSet::App,
        names,
        gbr,
    )
}

fn fleet(shards: usize, queue_capacity: usize) -> Fleet {
    let registry = Arc::new(ModelRegistry::new());
    registry.install(seed_trained_artifact("amg-16", 1)).unwrap();
    Fleet::start(
        registry,
        FleetConfig {
            shards,
            shard_config: ServeConfig { queue_capacity, ..ServeConfig::default() },
            ..FleetConfig::default()
        },
    )
}

fn spec(requests: u64, mode: LoadMode) -> LoadSpec {
    LoadSpec {
        seed: 42,
        requests,
        apps: vec!["amg-16".into()],
        pool_per_app: 128,
        width: 4,
        zipf_s: 1.1,
        mode,
    }
}

#[test]
fn same_seed_reproduces_the_same_schedule() {
    let a = spec(2_000, LoadMode::Open { rate_per_sec: 5e4 });
    let b = spec(2_000, LoadMode::Open { rate_per_sec: 5e4 });
    assert_eq!(a.schedule_digest(), b.schedule_digest());
    // ...and the schedule actually depends on the seed.
    let mut c = spec(2_000, LoadMode::Open { rate_per_sec: 5e4 });
    c.seed = 43;
    assert_ne!(a.schedule_digest(), c.schedule_digest());
    // Request synthesis is pure: the same index yields the same bits.
    let cdf = a.zipf_cdf();
    for index in [0u64, 1, 999, 1999] {
        assert_eq!(a.request_at(&cdf, index), b.request_at(&cdf, index));
    }
}

#[test]
fn sequential_single_shard_runs_reproduce_hits_and_summary() {
    let s = spec(600, LoadMode::Sequential);
    let f1 = fleet(1, 256);
    let r1 = run_load(&f1.handle(), &s);
    f1.shutdown();
    let f2 = fleet(1, 256);
    let r2 = run_load(&f2.handle(), &s);
    f2.shutdown();
    assert_eq!(r1.completed, 600);
    assert_eq!(r1.errors, 0);
    // Identical per-request hit/miss SEQUENCE, not just identical totals.
    assert_eq!(r1.hit_sequence_digest.expect("sequential mode"), r2.hit_sequence_digest.unwrap());
    assert_eq!(r1.cache_hits, r2.cache_hits);
    assert_eq!(r1.outcome_digest, r2.outcome_digest);
    assert_eq!(r1.deterministic_summary(), r2.deterministic_summary());
    // The Zipf head repeats inside a 128-row pool: hits must be plentiful.
    assert!(r1.cache_hits > 100, "only {} cache hits", r1.cache_hits);
}

#[test]
fn sharded_fleet_is_bit_identical_to_single_shard_under_load() {
    let s = spec(1_500, LoadMode::Closed { concurrency: 12 });
    let sharded = fleet(3, 64);
    let shard_report = run_load(&sharded.handle(), &s);
    let shard_stats = sharded.shutdown();
    let single = fleet(1, 64);
    let single_report = run_load(&single.handle(), &s);
    single.shutdown();
    assert_eq!(shard_report.completed, 1_500);
    assert_eq!(single_report.completed, 1_500);
    // Same predictions for every request index, regardless of shard
    // placement or completion order.
    assert_eq!(shard_report.outcome_digest, single_report.outcome_digest);
    // Work actually spread: more than one shard answered requests.
    let active = shard_stats.shards.iter().filter(|s| s.completed > 0).count();
    assert!(active > 1, "only {active} of 3 shards saw traffic");
}

/// Scaled-down CI harness (the `serve-load` job): ~50k requests against 2
/// shards vs 1 shard, asserting bit-exactness and a tail-latency sanity
/// bound. Ignored in the default tier for its runtime.
#[test]
#[ignore = "CI serve-load tier (release-mode ~50k requests)"]
fn ci_load_two_shards_match_single_shard_with_sane_tail() {
    let s = spec(50_000, LoadMode::Closed { concurrency: 16 });
    let sharded = fleet(2, 128);
    let shard_report = run_load(&sharded.handle(), &s);
    sharded.shutdown();
    let single = fleet(1, 128);
    let single_report = run_load(&single.handle(), &s);
    single.shutdown();
    assert_eq!(shard_report.completed, 50_000);
    assert_eq!(single_report.completed, 50_000);
    assert_eq!(shard_report.errors, 0);
    assert_eq!(shard_report.outcome_digest, single_report.outcome_digest);
    // Tail sanity, not a performance SLO: a closed-loop p99 over a warm
    // in-process fleet must sit well under a second, and the histogram
    // must be ordered.
    let p50 = shard_report.latency_ns(0.50);
    let p99 = shard_report.latency_ns(0.99);
    assert!(p99 >= p50);
    assert!(p99 < 1_000_000_000, "p99 {p99}ns breaches the 1s sanity bound");
    assert!(shard_report.throughput_rps > 1_000.0, "{} rps", shard_report.throughput_rps);
}

/// A traced 1-shard fleet plus its observability handle.
fn traced_fleet(queue_capacity: usize, ring_capacity: usize) -> (Fleet, Obs) {
    let obs = Obs::enabled_traced(ring_capacity);
    let registry = Arc::new(ModelRegistry::new_observed(&obs));
    registry.install(seed_trained_artifact("amg-16", 1)).unwrap();
    let fleet = Fleet::start_observed(
        registry,
        FleetConfig {
            shards: 1,
            shard_config: ServeConfig { queue_capacity, ..ServeConfig::default() },
            ..FleetConfig::default()
        },
        obs.clone(),
    );
    (fleet, obs)
}

#[test]
fn traced_load_serves_bit_identical_predictions() {
    // Zero-perturbation: the flight recorder, trace propagation and the
    // SLO monitor all run, and every served bit — outcomes, the
    // per-request cache hit/miss sequence, summary stats — matches the
    // untraced run exactly.
    let s = spec(600, LoadMode::Sequential);
    let plain = fleet(1, 256);
    let untraced = run_load(&plain.handle(), &s);
    plain.shutdown();

    let (traced, obs) = traced_fleet(256, 16_384);
    let slo = SloMonitor::new(SloConfig::default(), &obs);
    let report = run_load_slo(&traced.handle(), &s, slo);
    traced.shutdown();

    let tracer = obs.tracer();
    if untraced.outcome_digest != report.outcome_digest {
        eprintln!("--- flight recorder tail ---\n{}", tracer.dump_tail(64));
        panic!(
            "tracing perturbed served bits: {:#018x} vs {:#018x}",
            untraced.outcome_digest, report.outcome_digest
        );
    }
    assert_eq!(untraced.hit_sequence_digest, report.hit_sequence_digest);
    assert_eq!(untraced.completed, report.completed);
    assert_eq!(untraced.deterministic_summary(), report.deterministic_summary());

    // The traced run really recorded the pipeline end to end.
    let query = TraceQuery::new(tracer.events());
    assert_eq!(query.of_kind("serve.reply").len(), 600);
    assert!(!query.of_kind("serve.dispatch").is_empty());
    assert!(!query.of_kind("registry.install").is_empty());
    query.monotone("serve.reply", "version").unwrap_or_else(|err| {
        eprintln!("--- flight recorder tail ---\n{}", tracer.dump_tail(64));
        panic!("version regressed: {err}");
    });
}

/// CI-scale zero-perturbation run: a million closed-loop requests through
/// a traced fleet must produce the exact outcome digest of the untraced
/// fleet. Ignored in the default tier for its runtime.
#[test]
#[ignore = "CI serve-load tier (release-mode ~1M requests)"]
fn ci_traced_million_request_digest_matches_untraced() {
    let s = spec(1_000_000, LoadMode::Closed { concurrency: 16 });
    let plain = fleet(2, 128);
    let untraced = run_load(&plain.handle(), &s);
    plain.shutdown();

    let obs = Obs::enabled_traced(4_096);
    let registry = Arc::new(ModelRegistry::new_observed(&obs));
    registry.install(seed_trained_artifact("amg-16", 1)).unwrap();
    let traced = Fleet::start_observed(
        registry,
        FleetConfig {
            shards: 2,
            shard_config: ServeConfig { queue_capacity: 128, ..ServeConfig::default() },
            ..FleetConfig::default()
        },
        obs.clone(),
    );
    let report = run_load_slo(&traced.handle(), &s, SloMonitor::new(SloConfig::default(), &obs));
    traced.shutdown();

    assert_eq!(report.completed, 1_000_000);
    if untraced.outcome_digest != report.outcome_digest {
        eprintln!("--- flight recorder tail ---\n{}", obs.tracer().dump_tail(64));
        panic!(
            "tracing perturbed served bits at scale: {:#018x} vs {:#018x}",
            untraced.outcome_digest, report.outcome_digest
        );
    }
}

/// Every f64 a model serves, folded order-independently.
fn prediction_digest(values: &[f64]) -> u64 {
    values.iter().enumerate().fold(0u64, |d, (i, v)| {
        d ^ dragonfly_variability::faults::splitmix64(i as u64, v.to_bits())
    })
}

#[test]
fn seed_trained_artifact_pins_its_serving_digest() {
    // The artifact every serving test trains is deterministic; its
    // compiled (flattened) kernel must reproduce the exact prediction
    // bits, run after run, machine after machine. If training, flattening
    // or batched traversal drifts numerically, this digest moves.
    let artifact = seed_trained_artifact("amg-16", 1);
    let registry = Arc::new(ModelRegistry::new());
    registry.install(artifact.clone()).unwrap();
    let compiled = registry.get_compiled(&ModelKey::deviation("amg-16")).unwrap();
    assert!(compiled.flat().is_some(), "deviation installs must compile to a flat kernel");

    let mut grid = Matrix::zeros(0, 4);
    for i in 0..64 {
        let row: Vec<f64> = (0..4).map(|j| ((i * 7 + j * 5) % 23) as f64 * 0.125 - 1.0).collect();
        grid.push_row(&row);
    }
    let oracle = artifact.predict_batch(&grid);
    let fast = compiled.predict_batch(&grid);
    for (a, b) in oracle.iter().zip(&fast) {
        assert_eq!(a.to_bits(), b.to_bits(), "flat kernel diverged from pointer tree");
    }
    let digest = prediction_digest(&fast);
    assert_eq!(
        digest, PINNED_SERVING_DIGEST,
        "serving digest drifted: got {digest:#018x}, pinned {PINNED_SERVING_DIGEST:#018x}"
    );
}

#[test]
fn tracing_does_not_move_the_pinned_serving_digest() {
    // Same pinned digest, but installed through a traced registry: the
    // `registry.install` event and the flight recorder must not touch a
    // single served bit.
    let obs = Obs::enabled_traced(1_024);
    let registry = Arc::new(ModelRegistry::new_observed(&obs));
    registry.install(seed_trained_artifact("amg-16", 1)).unwrap();
    let compiled = registry.get_compiled(&ModelKey::deviation("amg-16")).unwrap();

    let mut grid = Matrix::zeros(0, 4);
    for i in 0..64 {
        let row: Vec<f64> = (0..4).map(|j| ((i * 7 + j * 5) % 23) as f64 * 0.125 - 1.0).collect();
        grid.push_row(&row);
    }
    let digest = prediction_digest(&compiled.predict_batch(&grid));
    assert_eq!(
        digest, PINNED_SERVING_DIGEST,
        "tracing moved the serving digest: got {digest:#018x}"
    );
    let query = TraceQuery::new(obs.tracer().events());
    assert_eq!(query.of_kind("registry.install").len(), 1, "the install was traced");
}

/// Pinned by running the seed-trained artifact once at introduction; any
/// change to training data, GBR params, flattening or traversal order
/// legitimately re-pins this constant — silent drift does not.
const PINNED_SERVING_DIGEST: u64 = 0xb094_bf92_602d_05d5;
