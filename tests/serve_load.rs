//! Load-harness determinism and fleet bit-exactness, driven through the
//! public facade.
//!
//! Invariants: the same seed reproduces the same schedule (same ranks,
//! same arrival offsets, same feature bits) without running any load; a
//! sequential single-shard run reproduces its full per-request cache
//! hit/miss sequence and summary stats; sharded fleets answer bit-for-bit
//! identically to a single shard under concurrent load; and the
//! seed-trained serving artifact's flattened kernel pins to a known
//! prediction digest, so silent numeric drift in training or compilation
//! fails loudly.

use dragonfly_variability::mlkit::gbr::{Gbr, GbrParams};
use dragonfly_variability::prelude::*;
use dragonfly_variability::serve::loadgen::run_load;
use std::sync::Arc;

/// The canonical seed-trained serving artifact: fixed data, fixed params.
fn seed_trained_artifact(app: &str, version: u64) -> ModelArtifact {
    let mut x = Matrix::zeros(0, 4);
    let mut y = Vec::new();
    for i in 0..48 {
        let row: Vec<f64> =
            (0..4).map(|j| ((i * 5 + j * 3) % 9) as f64 + 0.25 * ((i + j) % 3) as f64).collect();
        y.push(row[0] - 0.5 * row[2] + 0.1 * row[3] * row[1]);
        x.push_row(&row);
    }
    let gbr = Gbr::fit(&x, &y, &GbrParams { n_trees: 12, subsample: 1.0, ..GbrParams::default() });
    let names = (0..4).map(|i| format!("f{i}")).collect();
    ModelArtifact::deviation(
        app,
        version,
        dragonfly_variability::counters::FeatureSet::App,
        names,
        gbr,
    )
}

fn fleet(shards: usize, queue_capacity: usize) -> Fleet {
    let registry = Arc::new(ModelRegistry::new());
    registry.install(seed_trained_artifact("amg-16", 1)).unwrap();
    Fleet::start(
        registry,
        FleetConfig {
            shards,
            shard_config: ServeConfig { queue_capacity, ..ServeConfig::default() },
            ..FleetConfig::default()
        },
    )
}

fn spec(requests: u64, mode: LoadMode) -> LoadSpec {
    LoadSpec {
        seed: 42,
        requests,
        apps: vec!["amg-16".into()],
        pool_per_app: 128,
        width: 4,
        zipf_s: 1.1,
        mode,
    }
}

#[test]
fn same_seed_reproduces_the_same_schedule() {
    let a = spec(2_000, LoadMode::Open { rate_per_sec: 5e4 });
    let b = spec(2_000, LoadMode::Open { rate_per_sec: 5e4 });
    assert_eq!(a.schedule_digest(), b.schedule_digest());
    // ...and the schedule actually depends on the seed.
    let mut c = spec(2_000, LoadMode::Open { rate_per_sec: 5e4 });
    c.seed = 43;
    assert_ne!(a.schedule_digest(), c.schedule_digest());
    // Request synthesis is pure: the same index yields the same bits.
    let cdf = a.zipf_cdf();
    for index in [0u64, 1, 999, 1999] {
        assert_eq!(a.request_at(&cdf, index), b.request_at(&cdf, index));
    }
}

#[test]
fn sequential_single_shard_runs_reproduce_hits_and_summary() {
    let s = spec(600, LoadMode::Sequential);
    let f1 = fleet(1, 256);
    let r1 = run_load(&f1.handle(), &s);
    f1.shutdown();
    let f2 = fleet(1, 256);
    let r2 = run_load(&f2.handle(), &s);
    f2.shutdown();
    assert_eq!(r1.completed, 600);
    assert_eq!(r1.errors, 0);
    // Identical per-request hit/miss SEQUENCE, not just identical totals.
    assert_eq!(r1.hit_sequence_digest.expect("sequential mode"), r2.hit_sequence_digest.unwrap());
    assert_eq!(r1.cache_hits, r2.cache_hits);
    assert_eq!(r1.outcome_digest, r2.outcome_digest);
    assert_eq!(r1.deterministic_summary(), r2.deterministic_summary());
    // The Zipf head repeats inside a 128-row pool: hits must be plentiful.
    assert!(r1.cache_hits > 100, "only {} cache hits", r1.cache_hits);
}

#[test]
fn sharded_fleet_is_bit_identical_to_single_shard_under_load() {
    let s = spec(1_500, LoadMode::Closed { concurrency: 12 });
    let sharded = fleet(3, 64);
    let shard_report = run_load(&sharded.handle(), &s);
    let shard_stats = sharded.shutdown();
    let single = fleet(1, 64);
    let single_report = run_load(&single.handle(), &s);
    single.shutdown();
    assert_eq!(shard_report.completed, 1_500);
    assert_eq!(single_report.completed, 1_500);
    // Same predictions for every request index, regardless of shard
    // placement or completion order.
    assert_eq!(shard_report.outcome_digest, single_report.outcome_digest);
    // Work actually spread: more than one shard answered requests.
    let active = shard_stats.shards.iter().filter(|s| s.completed > 0).count();
    assert!(active > 1, "only {active} of 3 shards saw traffic");
}

/// Scaled-down CI harness (the `serve-load` job): ~50k requests against 2
/// shards vs 1 shard, asserting bit-exactness and a tail-latency sanity
/// bound. Ignored in the default tier for its runtime.
#[test]
#[ignore = "CI serve-load tier (release-mode ~50k requests)"]
fn ci_load_two_shards_match_single_shard_with_sane_tail() {
    let s = spec(50_000, LoadMode::Closed { concurrency: 16 });
    let sharded = fleet(2, 128);
    let shard_report = run_load(&sharded.handle(), &s);
    sharded.shutdown();
    let single = fleet(1, 128);
    let single_report = run_load(&single.handle(), &s);
    single.shutdown();
    assert_eq!(shard_report.completed, 50_000);
    assert_eq!(single_report.completed, 50_000);
    assert_eq!(shard_report.errors, 0);
    assert_eq!(shard_report.outcome_digest, single_report.outcome_digest);
    // Tail sanity, not a performance SLO: a closed-loop p99 over a warm
    // in-process fleet must sit well under a second, and the histogram
    // must be ordered.
    let p50 = shard_report.latency_ns(0.50);
    let p99 = shard_report.latency_ns(0.99);
    assert!(p99 >= p50);
    assert!(p99 < 1_000_000_000, "p99 {p99}ns breaches the 1s sanity bound");
    assert!(shard_report.throughput_rps > 1_000.0, "{} rps", shard_report.throughput_rps);
}

/// Every f64 a model serves, folded order-independently.
fn prediction_digest(values: &[f64]) -> u64 {
    values.iter().enumerate().fold(0u64, |d, (i, v)| {
        d ^ dragonfly_variability::faults::splitmix64(i as u64, v.to_bits())
    })
}

#[test]
fn seed_trained_artifact_pins_its_serving_digest() {
    // The artifact every serving test trains is deterministic; its
    // compiled (flattened) kernel must reproduce the exact prediction
    // bits, run after run, machine after machine. If training, flattening
    // or batched traversal drifts numerically, this digest moves.
    let artifact = seed_trained_artifact("amg-16", 1);
    let registry = Arc::new(ModelRegistry::new());
    registry.install(artifact.clone()).unwrap();
    let compiled = registry.get_compiled(&ModelKey::deviation("amg-16")).unwrap();
    assert!(compiled.flat().is_some(), "deviation installs must compile to a flat kernel");

    let mut grid = Matrix::zeros(0, 4);
    for i in 0..64 {
        let row: Vec<f64> = (0..4).map(|j| ((i * 7 + j * 5) % 23) as f64 * 0.125 - 1.0).collect();
        grid.push_row(&row);
    }
    let oracle = artifact.predict_batch(&grid);
    let fast = compiled.predict_batch(&grid);
    for (a, b) in oracle.iter().zip(&fast) {
        assert_eq!(a.to_bits(), b.to_bits(), "flat kernel diverged from pointer tree");
    }
    let digest = prediction_digest(&fast);
    assert_eq!(
        digest, PINNED_SERVING_DIGEST,
        "serving digest drifted: got {digest:#018x}, pinned {PINNED_SERVING_DIGEST:#018x}"
    );
}

/// Pinned by running the seed-trained artifact once at introduction; any
/// change to training data, GBR params, flattening or traversal order
/// legitimately re-pins this constant — silent drift does not.
const PINNED_SERVING_DIGEST: u64 = 0xb094_bf92_602d_05d5;
