//! End-to-end integration test: campaign -> datasets -> all three analyses,
//! exercised through the public facade exactly as a downstream user would.

use dragonfly_variability::experiments::deviation::analyze_deviation;
use dragonfly_variability::experiments::figures;
use dragonfly_variability::experiments::forecast::{evaluate, ForecastSpec};
use dragonfly_variability::experiments::neighborhood::{analyze, NeighborhoodParams};
use dragonfly_variability::mlkit::gbr::GbrParams;
use dragonfly_variability::mlkit::rfe::RfeParams;
use dragonfly_variability::prelude::*;
use std::sync::OnceLock;

/// One shared campaign for every test in this file (the campaign is the
/// expensive part; the analyses are cheap).
fn campaign() -> &'static CampaignResult {
    static CAMPAIGN: OnceLock<CampaignResult> = OnceLock::new();
    CAMPAIGN.get_or_init(|| run_campaign(&CampaignConfig::quick()))
}

#[test]
fn campaign_covers_every_requested_dataset() {
    let result = campaign();
    let config = CampaignConfig::quick();
    assert_eq!(result.datasets.len(), config.apps.len());
    for ds in &result.datasets {
        assert!(ds.runs.len() >= config.num_days, "{}: {} runs", ds.spec.label(), ds.runs.len());
    }
}

#[test]
fn every_run_has_complete_step_records() {
    for ds in &campaign().datasets {
        for run in &ds.runs {
            assert_eq!(run.steps.len(), ds.spec.num_steps());
            for s in &run.steps {
                assert!(s.time > 0.0 && s.time.is_finite());
                assert!(s.compute_time >= 0.0 && s.compute_time <= s.time);
                assert!(s.counters.iter().all(|&c| c >= 0.0 && c.is_finite()));
                assert!(s.io.iter().all(|&c| c >= 0.0 && c.is_finite()));
                assert!(s.sys.iter().all(|&c| c >= 0.0 && c.is_finite()));
            }
        }
    }
}

#[test]
fn mpi_fractions_rank_like_the_paper() {
    // miniVite > MILC > AMG > UMT in MPI fraction (Section III-B).
    let result = campaign();
    let frac = |kind: AppKind| {
        let ds = result.datasets.iter().find(|d| d.spec.kind == kind).unwrap();
        ds.runs.iter().map(|r| r.mpi_fraction()).sum::<f64>() / ds.runs.len() as f64
    };
    let (amg, milc, mv, umt) =
        (frac(AppKind::Amg), frac(AppKind::Milc), frac(AppKind::MiniVite), frac(AppKind::Umt));
    assert!(mv > milc, "miniVite {mv} vs MILC {milc}");
    assert!(milc > amg, "MILC {milc} vs AMG {amg}");
    assert!(amg > umt, "AMG {amg} vs UMT {umt}");
    assert!(umt < 0.65, "UMT has the smallest MPI fraction: {umt}");
    assert!(mv > 0.9, "miniVite is almost all MPI: {mv}");
}

#[test]
fn variability_exists_and_latency_codes_suffer_most() {
    let result = campaign();
    let ratio = |kind: AppKind| {
        result.datasets.iter().find(|d| d.spec.kind == kind).unwrap().variability_ratio()
    };
    // Everyone varies at least a little; the latency/irregular codes
    // (miniVite, UMT) vary more than AMG (the paper's Figures 1/5).
    for kind in AppKind::ALL {
        assert!(ratio(kind) > 1.02, "{kind} shows no variability");
    }
    assert!(ratio(AppKind::MiniVite) > ratio(AppKind::Amg));
}

#[test]
fn neighborhood_analysis_finds_recurring_heavy_users() {
    let result = campaign();
    let params = NeighborhoodParams { min_job_nodes: 8, tau: 1.0, top_k: 5, min_cooccurrence: 3 };
    let analysis = analyze(result, &params);
    assert_eq!(analysis.per_dataset.len(), result.datasets.len());
    assert!(!analysis.recurring.is_empty(), "some users must recur across dataset lists");
    // Recurring users are predominantly heavy archetypes (or the probe user).
    for (user, _) in &analysis.recurring {
        let heavy = result
            .users
            .iter()
            .find(|u| u.id == *user)
            .map(|u| u.archetype.is_heavy())
            .unwrap_or(*user == result.probe_user);
        assert!(heavy, "{user} recurs but is not a heavy user");
    }
}

#[test]
fn deviation_models_explain_more_than_the_mean() {
    let result = campaign();
    let params =
        RfeParams { folds: 3, gbr: GbrParams { n_trees: 25, ..Default::default() }, seed: 5 };
    let ds = result.datasets.iter().find(|d| d.spec.kind == AppKind::Milc).unwrap();
    let analysis = analyze_deviation(ds, &params);
    // Relevance is a distribution over the 13 counters.
    assert_eq!(analysis.rfe.relevance.len(), 13);
    assert!((analysis.rfe.relevance.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    // Absolute-scale MAPE is bounded (the paper reports < 5% at full scale;
    // the quick campaign is far smaller, so the bound is loose).
    assert!(analysis.rfe.mean_mape() < 40.0, "MAPE {}", analysis.rfe.mean_mape());
}

#[test]
fn forecaster_improves_with_context_or_features() {
    // A single (train seed, fold seed) pair makes this a coin-flip on the
    // quick campaign (the PR 1 note in CHANGES.md): one unlucky fold split
    // can put the rich model's MAPE above the poor model's. The paper's
    // claim is about the trend, so compare the median over five fold seeds
    // instead — still fully deterministic, no longer hostage to one split.
    let result = campaign();
    let ds = result.datasets.iter().find(|d| d.spec.kind == AppKind::Milc).unwrap();
    let params = AttentionParams { epochs: 25, d_attn: 8, hidden: 16, ..Default::default() };
    let median_mape = |spec: &ForecastSpec| -> f64 {
        let mut mapes: Vec<f64> = [1u64, 2, 3, 5, 8]
            .iter()
            .map(|&seed| evaluate(ds, spec, &params, 3, seed).mape)
            .collect();
        mapes.sort_by(f64::total_cmp);
        mapes[2]
    };
    let short = median_mape(&ForecastSpec { m: 3, k: 10, features: FeatureSet::App });
    let long = median_mape(&ForecastSpec { m: 10, k: 20, features: FeatureSet::AppPlacementIoSys });
    assert!(short.is_finite() && long.is_finite());
    // The paper's headline trend: more context + more features + a longer
    // amortizing horizon lowers MAPE. (The quick campaign is small, so the
    // comparison uses moderate m/k where both models have enough windows.)
    assert!(long < short, "rich model {long} should beat poor model {short}");
}

#[test]
fn descriptive_figures_have_paper_shapes() {
    let result = campaign();
    // Fig 3: MILC warmup visible.
    let milc = result.datasets.iter().find(|d| d.spec.kind == AppKind::Milc).unwrap();
    let trend = figures::fig3(milc).mean_time_per_step;
    let warm: f64 = trend[..20].iter().sum::<f64>() / 20.0;
    let full: f64 = trend[20..].iter().sum::<f64>() / 60.0;
    assert!(warm < full, "MILC warmup steps are faster");

    // Fig 7: counter trends correlate with the time trend.
    let f7 = figures::fig7(milc);
    let corr = figures::Fig7Series::correlation(&f7.mean_time, &f7.mean_rt_flit);
    assert!(corr > 0.55, "flit/time correlation {corr}");

    // Fig 45: best <= worst, MPI fraction sane.
    for ds in &result.datasets {
        let b = figures::fig45(ds);
        assert!(b.mpi.0 <= b.mpi.2 * 1.0001);
        assert!(b.mean_mpi_fraction > 0.0 && b.mean_mpi_fraction < 1.0);
    }
}
