//! Cross-crate counter semantics: what AriesNCL-style sessions and LDMS
//! sampling must guarantee when driven by the real simulator (not mocks).

use dragonfly_variability::counters::ldms::LDMS_COUNTERS;
use dragonfly_variability::prelude::*;

fn setup() -> (&'static Topology, NetworkSim<'static>, Vec<NodeId>) {
    // Leak the topology so the sim can borrow it for 'static in this test.
    let topo: &'static Topology =
        Box::leak(Box::new(Topology::new(DragonflyConfig::small()).unwrap()));
    let sim = NetworkSim::new(topo);
    let nodes: Vec<NodeId> = (0..16).map(NodeId).collect();
    (topo, sim, nodes)
}

#[test]
fn job_flits_are_conserved_at_minimum() {
    // Every byte a job sends is received by some processor tile: VC0 flits
    // across the whole machine must cover bytes / flit_size.
    let (topo, sim, nodes) = setup();
    let spec = AppSpec { kind: AppKind::Milc, num_nodes: 16 };
    let app = spec.instantiate(&nodes, 3);
    let mut traffic = Traffic::new();
    app.step_traffic(30, &mut traffic);
    let bg = BackgroundTraffic::zero(topo);
    let mut scratch = SimScratch::new(topo);
    let out = sim.simulate_step(&traffic, &bg, 1, &mut scratch);
    let mut telemetry = StepTelemetry::new(topo.num_routers());
    sim.fill_telemetry(&scratch, &bg, out.comm_time, &mut telemetry);

    let total = telemetry.total();
    let expected_vc0 = traffic.total_bytes() / topo.config().flit_bytes;
    assert!(
        (total.pt_flit_vc0 - expected_vc0).abs() < 1e-6 * expected_vc0,
        "vc0 {} vs expected {}",
        total.pt_flit_vc0,
        expected_vc0
    );
    // Router-tile flits cover at least one hop of every inter-router byte.
    assert!(total.rt_flit_tot > 0.0);
}

#[test]
fn session_counters_are_a_subset_of_machine_totals() {
    let (topo, sim, nodes) = setup();
    let placement = Placement::new(nodes.clone());
    let session = AriesSession::attach(topo, &placement);
    let spec = AppSpec { kind: AppKind::Amg, num_nodes: 16 };
    let app = spec.instantiate(&nodes, 5);
    let mut traffic = Traffic::new();
    app.step_traffic(2, &mut traffic);
    let bg = BackgroundTraffic::zero(topo);
    let mut scratch = SimScratch::new(topo);
    let out = sim.simulate_step(&traffic, &bg, 2, &mut scratch);
    let mut telemetry = StepTelemetry::new(topo.num_routers());
    sim.fill_telemetry(&scratch, &bg, out.comm_time, &mut telemetry);

    let snap = session.read(&telemetry);
    let machine = dragonfly_variability::counters::CounterSnapshot::from_stats(&telemetry.total());
    for c in Counter::ALL {
        assert!(
            snap.get(c) <= machine.get(c) + 1e-9,
            "{c}: session {} exceeds machine {}",
            snap.get(c),
            machine.get(c)
        );
        assert!(snap.get(c) >= 0.0);
    }
}

#[test]
fn ldms_io_reading_tracks_filesystem_traffic() {
    let (topo, sim, _) = setup();
    let layout = SystemLayout::with_io_stride(topo, 8);
    let sampler = LdmsSampler::new(layout.clone());
    let io_nodes: Vec<NodeId> =
        layout.io_routers().iter().flat_map(|&r| topo.nodes_of_router(r)).collect();
    assert!(!io_nodes.is_empty());

    // Background streaming into the I/O nodes.
    let mut writers = Traffic::new();
    let compute = layout.compute_nodes(topo);
    for (i, &n) in compute.iter().take(16).enumerate() {
        writers.push(n, io_nodes[i % io_nodes.len()], 1.0e9, 1000.0);
    }
    let bg = sim.route_traffic(&writers, None, 4);
    let scratch = SimScratch::new(topo);
    let mut telemetry = StepTelemetry::new(topo.num_routers());
    sim.fill_telemetry(&scratch, &bg, 1.0, &mut telemetry);

    let io = sampler.read_io(&telemetry);
    // All written bytes land on I/O processor tiles.
    let expected = 16.0 * 1.0e9 / topo.config().flit_bytes;
    assert!(
        io.pt_flit_tot >= expected * 0.99,
        "io pt flits {} vs expected {}",
        io.pt_flit_tot,
        expected
    );
    // sys reading with no job excludes nothing: covers at least the io part.
    let sys = sampler.read_sys(&telemetry, &[]);
    assert!(sys.rt_flit_tot >= io.rt_flit_tot - 1e-6);
    assert_eq!(LDMS_COUNTERS.len(), 4);
}

#[test]
fn counter_bank_matches_direct_session_deltas() {
    use dragonfly_variability::counters::CounterBank;

    let (topo, sim, nodes) = setup();
    let placement = Placement::new(nodes.clone());
    let session = AriesSession::attach(topo, &placement);
    let spec = AppSpec { kind: AppKind::Umt, num_nodes: 16 };
    let app = spec.instantiate(&nodes, 9);
    let bg = BackgroundTraffic::zero(topo);
    let mut scratch = SimScratch::new(topo);
    let mut telemetry = StepTelemetry::new(topo.num_routers());
    let mut bank = CounterBank::new(topo.num_routers());
    let mut traffic = Traffic::new();

    let r0 = session.routers()[0];
    let before = bank.snapshot(r0);
    let mut direct = 0.0;
    for step in 0..3 {
        app.step_traffic(step, &mut traffic);
        let out = sim.simulate_step(&traffic, &bg, step as u64, &mut scratch);
        sim.fill_telemetry(&scratch, &bg, out.comm_time, &mut telemetry);
        bank.accumulate(&telemetry);
        direct += Counter::RtFlitTot
            .value(telemetry.router(dragonfly_variability::dragonfly::ids::Idx::index(r0)));
    }
    let after = bank.snapshot(r0);
    let delta = CounterBank::delta(&before, &after)[Counter::RtFlitTot.index()];
    // The bank truncates fractional flits per step; allow one per step.
    assert!((delta as f64 - direct).abs() <= 3.0, "bank delta {delta} vs direct {direct}");
}
