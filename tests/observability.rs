//! The zero-perturbation contract of `dfv-obs`, end to end: attaching a
//! live metrics registry to the campaign, the training pipelines or the
//! fault layer never changes a single output bit; the exports are valid
//! JSONL and Prometheus text; and histogram quantiles honor their
//! log₂-bucket error bounds on arbitrary inputs.

use dragonfly_variability::experiments::deviation::{
    analyze_deviation_observed, analyze_deviation_with_policy,
};
use dragonfly_variability::experiments::forecast::{
    evaluate_observed, evaluate_with_policy, ForecastSpec,
};
use dragonfly_variability::experiments::serving::{train_artifacts, train_artifacts_observed};
use dragonfly_variability::mlkit::rfe::RfeParams;
use dragonfly_variability::obs::Log2Histogram;
use dragonfly_variability::prelude::*;
use proptest::prelude::*;

fn small_config() -> CampaignConfig {
    let mut config = CampaignConfig::quick();
    config.num_days = 2;
    config
}

/// Telemetry bit patterns of a campaign result (NaN != NaN, so faulted
/// datasets must be compared by bits, not values).
fn result_bits(r: &CampaignResult) -> Vec<u64> {
    r.datasets
        .iter()
        .flat_map(|d| &d.runs)
        .flat_map(|run| &run.steps)
        .flat_map(|s| {
            s.counters
                .iter()
                .chain(&s.io)
                .chain(&s.sys)
                .chain([&s.time, &s.compute_time])
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        })
        .collect()
}

#[test]
fn campaign_and_training_are_bit_identical_under_observation() {
    let config = small_config();
    let obs = Obs::enabled_logical();

    let baseline = run_campaign(&config);
    let observed = run_campaign_observed(&config, &obs);
    assert_eq!(baseline.sacct, observed.sacct, "observation must not move the schedule");
    assert_eq!(result_bits(&baseline), result_bits(&observed));

    // Deviation analysis (GBR + RFE) with live training metrics.
    let params =
        RfeParams { folds: 2, gbr: GbrParams { n_trees: 8, ..Default::default() }, seed: 1 };
    let plain =
        analyze_deviation_with_policy(&baseline.datasets[0], &params, MissingPolicy::MeanImpute);
    let watched =
        analyze_deviation_observed(&observed.datasets[0], &params, MissingPolicy::MeanImpute, &obs);
    assert_eq!(plain, watched, "RFE result must not depend on the registry");

    // Forecast CV with per-epoch loss recording.
    let fspec = ForecastSpec { m: 5, k: 5, features: FeatureSet::AppPlacement };
    let attention = AttentionParams { epochs: 3, d_attn: 4, hidden: 8, ..Default::default() };
    let ds = baseline.datasets.iter().find(|d| d.runs.len() >= 2).expect("enough runs");
    let plain = evaluate_with_policy(ds, &fspec, &attention, 2, 3, MissingPolicy::MeanImpute);
    let watched = evaluate_observed(ds, &fspec, &attention, 2, 3, MissingPolicy::MeanImpute, &obs);
    assert_eq!(plain, watched, "forecast outcome must not depend on the registry");

    // Serving artifact export (JSON is the canonical byte-level form).
    let train = dragonfly_variability::experiments::serving::ServeTrainConfig {
        gbr: GbrParams { n_trees: 6, ..GbrParams::default() },
        attention: AttentionParams { epochs: 2, d_attn: 4, hidden: 8, ..Default::default() },
        ..Default::default()
    };
    let plain: Vec<String> =
        train_artifacts(&baseline, &train).iter().map(|a| a.to_json()).collect();
    let watched: Vec<String> =
        train_artifacts_observed(&observed, &train, &obs).iter().map(|a| a.to_json()).collect();
    assert_eq!(plain, watched, "artifacts must serialize identically");

    // The registry actually observed all of it.
    let snap = obs.snapshot();
    assert!(snap.counter("campaign.probe_runs").unwrap() > 0);
    assert!(snap.counter("deviation.rows_built").unwrap() > 0);
    assert!(snap.counter("mlkit.gbr.rounds").unwrap() > 0);
    assert!(snap.counter("mlkit.attention.epochs").unwrap() > 0);
    let run_hist = format!("campaign.run_millis{{app=\"{}\"}}", baseline.datasets[0].spec.label());
    assert!(snap.histogram(&run_hist).is_some_and(|h| h.count() > 0), "missing {run_hist}");
    assert!(snap.histogram("span.campaign.phase2_measurement").is_some());
}

#[test]
fn faulted_campaign_is_bit_identical_and_verdict_rates_match_the_plan() {
    let config = small_config();
    let plan = FaultPlan::gaps(41, 0.3);
    let obs = Obs::enabled_logical();

    let baseline = run_campaign_faulted(&config, Some(&plan));
    let observed = run_campaign_faulted_observed(&config, Some(&plan), &obs);
    assert_eq!(baseline.sacct, observed.sacct);
    assert_eq!(result_bits(&baseline), result_bits(&observed), "verdict counting changed data");

    let snap = obs.snapshot();
    for site in [FaultSite::CounterDropout, FaultSite::LdmsIoGap] {
        let checked =
            snap.counter(&format!("faults.checked{{site=\"{}\"}}", site.label())).unwrap();
        let fired = snap.counter(&format!("faults.fired{{site=\"{}\"}}", site.label())).unwrap();
        assert!(checked > 100, "{site:?} checked only {checked} times");
        let rate = fired as f64 / checked as f64;
        assert!(
            (0.15..0.45).contains(&rate),
            "{site:?} realized rate {rate} far from the plan's 0.3"
        );
    }
    // Sites the gaps plan never schedules are consulted but never fire.
    let stale = format!("faults.fired{{site=\"{}\"}}", FaultSite::CounterStale.label());
    assert_eq!(snap.counter(&stale), Some(0));
}

#[test]
fn jsonl_export_round_trips_through_serde_json() {
    let obs = Obs::enabled_logical();
    obs.counter("a.count").add(7);
    obs.counter("a.count{app=\"milc-16\"}").inc();
    obs.gauge("a.loss").set(-0.5);
    obs.gauge("a.nan_gauge").set(f64::NAN);
    let h = obs.histogram("a.hist");
    for v in [0u64, 1, 2, 1023, u64::MAX] {
        h.record(v);
    }
    obs.span("a.phase").end();

    let jsonl = obs.snapshot().to_jsonl();
    assert_eq!(jsonl.lines().count(), 6);
    for line in jsonl.lines() {
        let parsed: serde_json::Value = serde_json::from_str(line).expect("line parses");
        let reserialized = serde_json::to_string(&parsed).expect("re-serialize");
        let reparsed: serde_json::Value = serde_json::from_str(&reserialized).expect("reparse");
        assert!(parsed == reparsed, "lossy round trip: {line}");
    }
    // NaN gauges are mapped to null, never emitted as bare NaN.
    assert!(jsonl.contains("\"a.nan_gauge\",\"type\":\"gauge\",\"value\":null"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantiles of the log₂ histogram are upper bounds within one bucket:
    /// for the true rank value `v`, `v <= quantile(q) <= max(2v+1, v)`,
    /// capped by the observed maximum; count/sum/max are exact.
    #[test]
    fn histogram_quantiles_honor_log2_bounds(
        values in proptest::collection::vec(any::<u64>(), 1..200),
        qs in proptest::collection::vec(0.001f64..=1.0, 1..6),
    ) {
        let mut h = Log2Histogram::default();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let n = sorted.len();

        prop_assert_eq!(h.count(), n as u64);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
        prop_assert_eq!(h.sum(), values.iter().map(|&v| v as u128).sum::<u128>());

        for &q in &qs {
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let v = sorted[rank - 1];
            let got = h.quantile(q);
            prop_assert!(got >= v, "quantile({q}) = {got} below true rank value {v}");
            prop_assert!(
                got as u128 <= (2 * v as u128 + 1).min(h.max() as u128).max(v as u128),
                "quantile({q}) = {got} beyond one bucket above {v}"
            );
        }
        // Monotone in q.
        let mut qs_sorted = qs.clone();
        qs_sorted.sort_by(f64::total_cmp);
        for pair in qs_sorted.windows(2) {
            prop_assert!(h.quantile(pair[0]) <= h.quantile(pair[1]));
        }
    }
}
